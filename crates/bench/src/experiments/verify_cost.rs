//! E-V: cost of statically verifying a kernel, by strategy.
//!
//! The verifier has four ways to establish (or refute) correctness, with
//! very different costs:
//!
//! 1. **network certificate** — recognize the program as a comparator
//!    network and check the network on all `2^n` 0-1 vectors (comparator
//!    simulation, no machine semantics);
//! 2. **0-1 run** — execute the full program on all `2^n` 0-1 inputs
//!    (sound certificate for min/max kernels, necessary-only for cmov);
//! 3. **symbolic value flow** — walk the order-class tree and discharge
//!    every class (exact perm-certificate for either ISA, the only static
//!    proof available to tie-unsafe cmp/cmov kernels);
//! 4. **exhaustive permutations** — the ground-truth oracle, `n!` full
//!    program runs.
//!
//! This experiment times all four on the library's sorting-network kernels
//! for n = 2..5 in both ISA modes (E-V); times the symbolic certificate
//! against the oracle on the tie-unsafe reference kernels and on stitched
//! n = 6/8 compositions, where [`sortsynth_verify::valueflow::verify_stitched`]
//! replaces `n!` executions with per-block proofs plus `2^n` model
//! evaluations (E-V3); and then measures how often dead-code elimination can
//! shrink an *enumerated minimal* kernel (it never should: a kernel with a
//! removable instruction is not minimal) (E-V2).

use sortsynth_isa::{factorial, IsaMode, Machine, Program};
use sortsynth_kernels::{network_kernel, reference, stitched_window3_kernel};
use sortsynth_search::{synthesize, Cut, SynthesisConfig};
use sortsynth_verify::{dce, network, valueflow, zero_one, BlockSpec};

use crate::util::{fmt_duration, time, write_bench_json, BenchConfig, Table};

fn mode_name(mode: IsaMode) -> &'static str {
    match mode {
        IsaMode::Cmov => "cmov",
        IsaMode::MinMax => "minmax",
    }
}

/// Mean wall-clock of `reps` runs of `f`, with the result of the last run.
fn time_reps<T>(reps: u32, mut f: impl FnMut() -> T) -> (T, std::time::Duration) {
    let (value, total) = time(|| {
        let mut last = None;
        for _ in 0..reps {
            last = Some(f());
        }
        last.expect("reps > 0")
    });
    (value, total / reps)
}

/// One E-V3 differential row: symbolic (or stitched) proof vs the `n!`
/// oracle on the same program. Returns the speedup multiple.
#[allow(clippy::too_many_arguments)]
fn symbolic_vs_oracle_row(
    table: &mut Table,
    label: &str,
    machine: &Machine,
    prog: &Program,
    blocks: Option<&[BlockSpec]>,
    reps: u32,
    path: &str,
) -> f64 {
    let (certified, t_sym) = time_reps(reps, || match blocks {
        Some(blocks) => valueflow::verify_stitched(machine, prog, blocks).is_ok(),
        None => valueflow::analyze(machine, prog).certified(),
    });
    assert!(certified, "{label}: static proof failed");
    let (correct, t_perm) = time_reps(reps, || machine.is_correct(prog));
    assert!(correct, "{label}: oracle refutes a reference kernel");
    let speedup = t_perm.as_secs_f64() / t_sym.as_secs_f64().max(1e-12);
    table.row_strings(vec![
        machine.n().to_string(),
        label.to_string(),
        prog.len().to_string(),
        path.to_string(),
        fmt_duration(t_sym),
        fmt_duration(t_perm),
        format!("{speedup:.1}"),
    ]);
    speedup
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E-V: verification cost by strategy ==");
    let reps: u32 = if cfg.quick { 20 } else { 200 };
    let max_n = if cfg.quick { 3 } else { 5 };
    let mut table = Table::new(&[
        "n",
        "isa",
        "instrs",
        "network cert",
        "0-1 run",
        "symbolic",
        "exhaustive perms",
    ]);
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in 2..=max_n {
            let (machine, prog) = network_kernel(n, mode);
            let (net, t_net) = time_reps(reps, || {
                let comparators =
                    network::extract_network(&machine, &prog).expect("network kernel");
                network::network_witness(machine.n(), &comparators)
            });
            assert!(net.is_none(), "network kernels sort");
            let (zo, t_zo) = time_reps(reps, || zero_one::zero_one_witness(&machine, &prog));
            assert!(zo.is_none(), "network kernels pass 0-1");
            let (sym, t_sym) = time_reps(reps, || valueflow::analyze(&machine, &prog));
            assert!(sym.certified(), "network kernels earn a perm-certificate");
            let (correct, t_perm) = time_reps(reps, || machine.is_correct(&prog));
            assert!(correct);
            table.row_strings(vec![
                n.to_string(),
                mode_name(mode).to_string(),
                prog.len().to_string(),
                fmt_duration(t_net),
                fmt_duration(t_zo),
                fmt_duration(t_sym),
                fmt_duration(t_perm),
            ]);
        }
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("ev_verify_cost.csv"));
    println!("(2^n vs n! inputs: the certificate paths stay cheap where the oracle blows up)");

    println!("\n== E-V3: symbolic certificates vs the n! oracle ==");
    // Tie-unsafe kernels are where the symbolic walk earns its keep: no
    // network shape, 0-1 inconclusive (necessary-only for cmp/cmov), so
    // before this analyzer the gate had no choice but the oracle. The
    // monolithic walk shares class-tree prefixes but is still Θ(n!·len) —
    // a constant-factor win. The *composed* rows are the asymptotic win:
    // per-block proofs plus 2^n model evaluations instead of n! runs.
    let reps_comp: u32 = if cfg.quick { 5 } else { 50 };
    let mut diff = Table::new(&[
        "n",
        "kernel",
        "instrs",
        "proof",
        "symbolic",
        "n! oracle",
        "speedup",
    ]);
    {
        let (machine, prog) = reference::alphadev_cmov3();
        symbolic_vs_oracle_row(
            &mut diff,
            "alphadev3 (tie-unsafe)",
            &machine,
            &prog,
            None,
            reps,
            "monolithic",
        );
    }
    let tie5_speedup = {
        let (machine, prog) = reference::tie_unsafe5();
        symbolic_vs_oracle_row(
            &mut diff,
            "tie_unsafe5 (tie-unsafe)",
            &machine,
            &prog,
            None,
            reps,
            "monolithic",
        )
    };
    let mut composed_min_speedup = f64::INFINITY;
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in [6u8, 8] {
            let (machine, prog, tiles) = stitched_window3_kernel(n, mode);
            let blocks: Vec<BlockSpec> = tiles
                .into_iter()
                .map(|(start, end, sorts)| BlockSpec { start, end, sorts })
                .collect();
            let label = format!("stitched windows ({})", mode_name(mode));
            let speedup = symbolic_vs_oracle_row(
                &mut diff,
                &label,
                &machine,
                &prog,
                Some(&blocks),
                reps_comp,
                "composed",
            );
            composed_min_speedup = composed_min_speedup.min(speedup);
        }
    }
    diff.print();
    diff.write_csv(&cfg.ensure_out_dir().join("ev3_symbolic_vs_oracle.csv"));
    println!(
        "(tie_unsafe5 monolithic speedup {tie5_speedup:.1}x, composed min \
         {composed_min_speedup:.1}x; the composed path is where the n! term disappears)"
    );
    // Acceptance gate, opt-in on the reference container: the symbolic
    // proof must beat the oracle on the tie-unsafe n = 5 kernel (both are
    // Θ(n!·len), so the monolithic margin is a constant factor — ~2x on the
    // reference container, gated at 1.5x for noise), and composition must
    // deliver the ≥10x asymptotic separation the monolithic walk cannot.
    if std::env::var("SORTSYNTH_ENFORCE_BASELINE").as_deref() == Ok("1") {
        assert!(
            tie5_speedup >= 1.5,
            "symbolic perm-certificate must beat the n! oracle on tie_unsafe5, \
             got {tie5_speedup:.2}x"
        );
        assert!(
            composed_min_speedup >= 10.0,
            "composed certificates must beat the n! oracle >=10x, got \
             {composed_min_speedup:.2}x"
        );
    }

    println!("\n== E-V2: DCE-reducibility of enumerated minimal kernels ==");
    let mut reducible = Table::new(&["n", "isa", "solutions checked", "dce-reducible"]);
    let sample = if cfg.quick { 50 } else { 500 };
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in 2..=3u8 {
            let machine = sortsynth_isa::Machine::new(n, 1, mode);
            let probe = synthesize(&SynthesisConfig::best(machine.clone()));
            let len = probe.found_len.expect("kernels exist for n <= 3");
            let result = synthesize(
                &SynthesisConfig::new(machine.clone())
                    .budget_viability(true)
                    .cut(Cut::Factor(1.0))
                    .all_solutions(true)
                    .max_len(len),
            );
            let programs = result.dag.programs(sample);
            let shrunk = programs
                .iter()
                .filter(|p| dce(&machine, p).len() < p.len())
                .count();
            reducible.row_strings(vec![
                n.to_string(),
                mode_name(mode).to_string(),
                programs.len().to_string(),
                shrunk.to_string(),
            ]);
            assert_eq!(
                shrunk, 0,
                "a minimal-length kernel carried dead code (n={n} {mode:?})"
            );
        }
    }
    reducible.print();
    reducible.write_csv(&cfg.ensure_out_dir().join("ev2_dce_reducible.csv"));
    write_bench_json(
        "verify_cost",
        &format!(
            "{{\"experiment\":\"verify_cost\",\"verify_cost\":{},\
             \"symbolic_vs_oracle\":{},\
             \"tie_unsafe5_speedup\":{tie5_speedup:.2},\
             \"composed_min_speedup\":{composed_min_speedup:.2},\
             \"dce_reducible\":{}}}\n",
            table.rows_json(),
            diff.rows_json(),
            reducible.rows_json(),
        ),
    );
    println!(
        "(factorial({max_n}) = {}; minimal kernels carry no dead code)",
        factorial(max_n)
    );
}
