//! E1 + E17 — §5.1: the search-space structure table (`n`, `n!`, optimal
//! size, program-space size) and the states actually enumerated by the best
//! configuration.

use sortsynth_isa::{factorial, IsaMode, Machine};
use sortsynth_search::{synthesize, SynthesisConfig};

use crate::util::{fmt_duration, time, BenchConfig, Table};

/// Known / paper-reported optimal kernel lengths for the cmov ISA.
pub fn optimal_cmov_len(n: u8) -> u32 {
    match n {
        2 => 4,
        3 => 11,
        4 => 20,
        5 => 33,
        6 => 45,
        _ => panic!("no tabulated optimum for n = {n}"),
    }
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E1 (§5.1): search-space structure ==");
    let mut table = Table::new(&["n", "n!", "optimal size", "program space (log10)"]);
    for n in 3..=6u8 {
        // The paper's n = 6 row (10^108.4) corresponds to two scratch
        // registers; the smaller sizes use one.
        let scratch = if n == 6 { 2 } else { 1 };
        let machine = Machine::new(n, scratch, IsaMode::Cmov);
        let len = optimal_cmov_len(n);
        table.row_strings(vec![
            n.to_string(),
            factorial(n).to_string(),
            len.to_string(),
            format!("10^{:.1}", machine.program_space_log10(len)),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e01_search_space.csv"));

    println!("\n== E17 (§5.1): states enumerated by the best configuration ==");
    let mut states = Table::new(&["n", "states generated", "states kept", "time"]);
    let max_n = if cfg.n5 { 5 } else { 4 };
    let max_n = if cfg.quick { 3 } else { max_n };
    for n in 3..=max_n {
        let machine = Machine::new(n, 1, IsaMode::Cmov);
        let (result, elapsed) = time(|| synthesize(&SynthesisConfig::best(machine)));
        states.row_strings(vec![
            n.to_string(),
            result.stats.generated.to_string(),
            result.stats.states_kept.to_string(),
            fmt_duration(elapsed),
        ]);
    }
    states.print();
    states.write_csv(&cfg.ensure_out_dir().join("e17_states_enumerated.csv"));
    println!("(paper: 7e3 / 7e4 / 6e6 for n = 3/4/5; AlphaDev: 4e5 / 1e6 / 6e6)");
}
