//! E9 — §5.2's enumerative-approach ablation table: the effect of each
//! optimization of §3 in isolation and in combination, at n = 3.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, Cut, Heuristic, Strategy, SynthesisConfig, SynthesisResult};

use crate::util::{fmt_duration, time, BenchConfig, Table};

fn run_row(table: &mut Table, label: &str, cfg: SynthesisConfig) -> SynthesisResult {
    let (result, elapsed) = time(|| synthesize(&cfg));
    let len_cell = match result.found_len {
        Some(l) => l.to_string(),
        None => "— (budget)".into(),
    };
    table.row_strings(vec![
        label.into(),
        fmt_duration(elapsed),
        len_cell,
        result.stats.generated.to_string(),
        result.stats.states_kept.to_string(),
    ]);
    result
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E9 (§5.2): enumerative-approach ablation, n = 3 ==");
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    // The slowest paper rows (blind Dijkstra, unguided A*) take minutes;
    // cap every row at the configured budget so the table always completes.
    let budget = if cfg.quick {
        std::time::Duration::from_secs(5)
    } else {
        cfg.budget
    };
    let base = || SynthesisConfig::new(machine.clone()).time_limit(budget);
    let astar = |h: Heuristic| base().strategy(Strategy::AStar { heuristic: h });

    let mut table = Table::new(&["configuration", "time", "len", "generated", "kept"]);

    // Dijkstra rows (layered = uniform-cost with dedup).
    run_row(&mut table, "dijkstra, single core", base());
    run_row(
        &mut table,
        "dijkstra, parallel (4 threads)",
        base().threads(4),
    );

    // (I): best-first with dedup, no heuristic guidance.
    run_row(
        &mut table,
        "(I) := A*, dedup, no heuristic",
        astar(Heuristic::None),
    );
    run_row(
        &mut table,
        "(I) + permutation count",
        astar(Heuristic::PermCount),
    );
    run_row(
        &mut table,
        "(I) + register assignment count",
        astar(Heuristic::AssignCount),
    );
    run_row(
        &mut table,
        "(I) + assignment instructions needed",
        astar(Heuristic::MaxRemaining),
    );

    // Cuts on the layered search.
    run_row(&mut table, "(I) + cut with 2", base().cut(Cut::Factor(2.0)));
    run_row(
        &mut table,
        "(I) + cut with 1.5",
        base().cut(Cut::Factor(1.5)),
    );
    run_row(&mut table, "(I) + cut with 1", base().cut(Cut::Factor(1.0)));
    run_row(
        &mut table,
        "(I) + cut with +2",
        base().cut(Cut::Additive(2)),
    );

    // Action restriction and viability.
    run_row(
        &mut table,
        "(I) + assignment optimal instructions",
        base().optimal_instrs_only(true),
    );
    run_row(
        &mut table,
        "(I) + assignment viability check",
        base().budget_viability(true).max_len(11),
    );

    // Combinations: (II) and (III), as defined in the paper's table
    // ((II) = perm-count heuristic + optimal instructions + viability;
    // (III) adds the k = 1 cut). The free-running best-first variant does
    // not certify minimality, so the shipped best configuration applies the
    // same toggles on the layered open list — shown as the last row.
    run_row(
        &mut table,
        "(II) := perm count + opt instrs + viability",
        astar(Heuristic::PermCount)
            .optimal_instrs_only(true)
            .budget_viability(true),
    );
    run_row(
        &mut table,
        "(III) := (II) + cut 1",
        astar(Heuristic::PermCount)
            .optimal_instrs_only(true)
            .budget_viability(true)
            .cut(Cut::Factor(1.0)),
    );
    run_row(
        &mut table,
        "best (layered (III), ships as SynthesisConfig::best)",
        SynthesisConfig::best(machine.clone()).time_limit(budget),
    );

    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e09_enum_ablation.csv"));
    println!(
        "(paper, n = 3: dijkstra 56 s; (I) 219 s; +perm-count 1.7 s; cut-1 325 ms; (III) 97 ms)"
    );
}
