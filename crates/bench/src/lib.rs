//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5). Each `bin/` target reproduces one artifact; `run_all`
//! drives them all and drops CSVs into `EXPERIMENTS-results/`.
//!
//! Environment knobs are documented on [`util::BenchConfig`].

pub mod experiments;
pub mod util;
