//! Property-based tests for the planning substrate: plans validate, BFS is
//! length-optimal, and admissible A* matches BFS.

use proptest::prelude::*;
use sortsynth_plan::{
    solve, Action, ConditionalEffect, Fact, PlanHeuristic, PlanLimits, PlanOutcome, PlanStrategy,
    Problem,
};

/// Random small STRIPS problems: a token-passing graph where action
/// `(i → j)` moves the token from node i to node j along randomly chosen
/// edges. Always solvable iff the goal node is reachable.
fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        2usize..8,
        prop::collection::vec((0usize..8, 0usize..8), 1..20),
    )
        .prop_map(|(nodes, edges)| {
            let actions = edges
                .into_iter()
                .map(|(from, to)| (from % nodes, to % nodes))
                .filter(|(from, to)| from != to)
                .map(|(from, to)| Action {
                    name: format!("move-{from}-{to}"),
                    pre: vec![Fact(from as u32)],
                    effects: vec![ConditionalEffect {
                        when: vec![],
                        add: vec![Fact(to as u32)],
                        del: vec![Fact(from as u32)],
                    }],
                })
                .collect();
            Problem {
                num_facts: nodes,
                init: vec![Fact(0)],
                goal: vec![Fact((nodes - 1) as u32)],
                actions,
            }
        })
}

proptest! {
    /// Whatever any strategy returns must validate, and BFS plans are
    /// shortest — admissible A* (h_max) must match their length.
    #[test]
    fn planners_agree_on_random_token_graphs(problem in arb_problem()) {
        let limits = PlanLimits {
            max_nodes: Some(100_000),
            ..PlanLimits::default()
        };
        let bfs = solve(&problem, PlanStrategy::Bfs, limits.clone());
        match bfs.outcome {
            PlanOutcome::Solved => {
                let bfs_plan = bfs.plan.expect("solved");
                prop_assert!(problem.validate(&bfs_plan));
                // Admissible A* finds an equally short plan.
                let astar = solve(&problem, PlanStrategy::AStar(PlanHeuristic::HMax), limits.clone());
                prop_assert_eq!(astar.outcome, PlanOutcome::Solved);
                let astar_plan = astar.plan.expect("solved");
                prop_assert!(problem.validate(&astar_plan));
                prop_assert_eq!(astar_plan.len(), bfs_plan.len());
                // Greedy searches still find *a* valid plan.
                for h in [PlanHeuristic::GoalCount, PlanHeuristic::HAdd] {
                    let gbfs = solve(&problem, PlanStrategy::Gbfs(h), limits.clone());
                    prop_assert_eq!(gbfs.outcome, PlanOutcome::Solved);
                    prop_assert!(problem.validate(&gbfs.plan.expect("solved")));
                }
            }
            PlanOutcome::Unsolvable => {
                // Then no strategy may claim success.
                for strategy in [
                    PlanStrategy::Gbfs(PlanHeuristic::HAdd),
                    PlanStrategy::AStar(PlanHeuristic::HMax),
                ] {
                    let r = solve(&problem, strategy, limits.clone());
                    prop_assert_eq!(r.outcome, PlanOutcome::Unsolvable);
                }
            }
            PlanOutcome::Budget => {}
        }
    }

    /// Validation rejects corrupted plans.
    #[test]
    fn validation_rejects_random_suffix_corruption(problem in arb_problem(), junk in 0usize..100) {
        let limits = PlanLimits { max_nodes: Some(100_000), ..PlanLimits::default() };
        let bfs = solve(&problem, PlanStrategy::Bfs, limits.clone());
        if let (PlanOutcome::Solved, Some(mut plan)) = (bfs.outcome, bfs.plan) {
            // An out-of-range action index never validates.
            plan.push(problem.actions.len() + junk);
            prop_assert!(!problem.validate(&plan));
        }
    }
}
