//! Grounded propositional planning with conditional effects.
//!
//! The substrate the paper's §5.2 planning baselines (fast-downward, LAMA,
//! Scorpion, CPDDL) operate on: states are sets of facts, actions have
//! preconditions and (conditional) add/delete effects, and a plan is an
//! action sequence from the initial state to a goal state.

use std::fmt;

/// A ground proposition, identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact(pub u32);

/// One conditional effect: when every `when` fact holds in the *current*
/// state, `add` facts are added and `del` facts removed (adds win over
/// deletes of the same fact, the PDDL convention).
#[derive(Debug, Clone, Default)]
pub struct ConditionalEffect {
    /// Condition facts (empty = unconditional).
    pub when: Vec<Fact>,
    /// Facts added.
    pub add: Vec<Fact>,
    /// Facts deleted.
    pub del: Vec<Fact>,
}

/// A ground action.
#[derive(Debug, Clone, Default)]
pub struct Action {
    /// Human-readable name (the instruction text for synthesis encodings).
    pub name: String,
    /// Precondition facts.
    pub pre: Vec<Fact>,
    /// Effects, evaluated against the pre-action state.
    pub effects: Vec<ConditionalEffect>,
}

/// A grounded planning problem.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    /// Total number of facts.
    pub num_facts: usize,
    /// Facts true initially.
    pub init: Vec<Fact>,
    /// Facts that must hold in a goal state.
    pub goal: Vec<Fact>,
    /// The ground actions.
    pub actions: Vec<Action>,
}

/// A planning state: a bitset over facts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    words: Box<[u64]>,
}

impl State {
    /// The empty state over `num_facts` facts.
    pub fn empty(num_facts: usize) -> Self {
        State {
            words: vec![0u64; num_facts.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Builds a state from a fact list.
    pub fn from_facts(num_facts: usize, facts: &[Fact]) -> Self {
        let mut s = State::empty(num_facts);
        for &f in facts {
            s.insert(f);
        }
        s
    }

    /// Whether `fact` holds.
    #[inline]
    pub fn holds(&self, fact: Fact) -> bool {
        self.words[fact.0 as usize / 64] & (1 << (fact.0 % 64)) != 0
    }

    /// Adds `fact`.
    #[inline]
    pub fn insert(&mut self, fact: Fact) {
        self.words[fact.0 as usize / 64] |= 1 << (fact.0 % 64);
    }

    /// Removes `fact`.
    #[inline]
    pub fn remove(&mut self, fact: Fact) {
        self.words[fact.0 as usize / 64] &= !(1 << (fact.0 % 64));
    }

    /// Whether every fact in `facts` holds.
    pub fn holds_all(&self, facts: &[Fact]) -> bool {
        facts.iter().all(|&f| self.holds(f))
    }

    /// Number of facts in `facts` that do *not* hold (the goal-count
    /// heuristic).
    pub fn missing(&self, facts: &[Fact]) -> usize {
        facts.iter().filter(|&&f| !self.holds(f)).count()
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (w, &word) in self.words.iter().enumerate() {
            for b in 0..64 {
                if word & (1 << b) != 0 {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", w * 64 + b)?;
                    first = false;
                }
            }
        }
        write!(f, "}}")
    }
}

impl Problem {
    /// Whether `action` is applicable in `state`.
    pub fn applicable(&self, state: &State, action: &Action) -> bool {
        state.holds_all(&action.pre)
    }

    /// Applies `action` (assumed applicable), returning the successor.
    pub fn apply(&self, state: &State, action: &Action) -> State {
        let mut next = state.clone();
        // Deletes first, adds second (adds win), all conditions read from
        // the pre-action state.
        for eff in &action.effects {
            if state.holds_all(&eff.when) {
                for &f in &eff.del {
                    next.remove(f);
                }
            }
        }
        for eff in &action.effects {
            if state.holds_all(&eff.when) {
                for &f in &eff.add {
                    next.insert(f);
                }
            }
        }
        next
    }

    /// The initial state.
    pub fn initial_state(&self) -> State {
        State::from_facts(self.num_facts, &self.init)
    }

    /// Whether `state` satisfies the goal.
    pub fn is_goal(&self, state: &State) -> bool {
        state.holds_all(&self.goal)
    }

    /// Validates that `plan` is executable from the initial state and ends
    /// in a goal state.
    pub fn validate(&self, plan: &[usize]) -> bool {
        let mut state = self.initial_state();
        for &ai in plan {
            let Some(action) = self.actions.get(ai) else {
                return false;
            };
            if !self.applicable(&state, action) {
                return false;
            }
            state = self.apply(&state, action);
        }
        self.is_goal(&state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-position sliding token: move token from i to i+1.
    fn chain_problem() -> Problem {
        let mk_move = |from: u32, to: u32| Action {
            name: format!("move-{from}-{to}"),
            pre: vec![Fact(from)],
            effects: vec![ConditionalEffect {
                when: vec![],
                add: vec![Fact(to)],
                del: vec![Fact(from)],
            }],
        };
        Problem {
            num_facts: 3,
            init: vec![Fact(0)],
            goal: vec![Fact(2)],
            actions: vec![mk_move(0, 1), mk_move(1, 2)],
        }
    }

    #[test]
    fn state_bitset_ops() {
        let mut s = State::empty(130);
        assert!(!s.holds(Fact(129)));
        s.insert(Fact(129));
        s.insert(Fact(0));
        assert!(s.holds(Fact(129)) && s.holds(Fact(0)));
        s.remove(Fact(0));
        assert!(!s.holds(Fact(0)));
        assert_eq!(s.missing(&[Fact(0), Fact(129)]), 1);
    }

    #[test]
    fn apply_and_validate() {
        let p = chain_problem();
        let s0 = p.initial_state();
        assert!(p.applicable(&s0, &p.actions[0]));
        assert!(!p.applicable(&s0, &p.actions[1]));
        let s1 = p.apply(&s0, &p.actions[0]);
        assert!(s1.holds(Fact(1)) && !s1.holds(Fact(0)));
        assert!(p.validate(&[0, 1]));
        assert!(!p.validate(&[1]));
        assert!(!p.validate(&[0]));
        assert!(!p.validate(&[0, 7]));
    }

    #[test]
    fn conditional_effects_read_pre_state() {
        // Action with two conditional effects that would chain if conditions
        // were read from the intermediate state; correct semantics fire only
        // the first.
        let action = Action {
            name: "cond".into(),
            pre: vec![],
            effects: vec![
                ConditionalEffect {
                    when: vec![Fact(0)],
                    add: vec![Fact(1)],
                    del: vec![],
                },
                ConditionalEffect {
                    when: vec![Fact(1)],
                    add: vec![Fact(2)],
                    del: vec![],
                },
            ],
        };
        let p = Problem {
            num_facts: 3,
            init: vec![Fact(0)],
            goal: vec![],
            actions: vec![action],
        };
        let s1 = p.apply(&p.initial_state(), &p.actions[0]);
        assert!(s1.holds(Fact(1)));
        assert!(
            !s1.holds(Fact(2)),
            "conditions must not see this action's adds"
        );
    }

    #[test]
    fn add_wins_over_delete() {
        let action = Action {
            name: "both".into(),
            pre: vec![],
            effects: vec![ConditionalEffect {
                when: vec![],
                add: vec![Fact(0)],
                del: vec![Fact(0)],
            }],
        };
        let p = Problem {
            num_facts: 1,
            init: vec![Fact(0)],
            goal: vec![],
            actions: vec![action],
        };
        let s1 = p.apply(&p.initial_state(), &p.actions[0]);
        assert!(s1.holds(Fact(0)));
    }
}
