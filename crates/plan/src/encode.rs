//! Encoding kernel synthesis as a grounded planning problem (§5.2's
//! `Plan-Parallel` formulation).
//!
//! Every input permutation contributes a copy of the register file as
//! facts; each machine instruction becomes one action whose conditional
//! effects transform *all* copies simultaneously — exactly the paper's
//! "encode each possible permutation and transform them in tandem with the
//! program execution". A plan is then literally a sorting-kernel program.
//!
//! The flags are modelled as complementary fact pairs (`lt?`/`¬lt?`),
//! because STRIPS conditions are positive: `cmovl` fires on `lt?`, and the
//! no-move case needs no effect at all.

use sortsynth_isa::{Instr, Machine, Op, Program};

use crate::strips::{Action, ConditionalEffect, Fact, Problem};

/// Fact-layout helper for one machine/permutation-suite encoding.
#[derive(Debug, Clone)]
pub struct Layout {
    regs: usize,
    vals: usize,
    per_perm: usize,
    perms: usize,
}

impl Layout {
    fn new(machine: &Machine, perms: usize) -> Self {
        let regs = machine.num_regs() as usize;
        let vals = machine.n() as usize + 1;
        Layout {
            regs,
            vals,
            per_perm: regs * vals + 4,
            perms,
        }
    }

    /// Fact: register `r` of permutation copy `p` holds value `v`.
    pub fn x(&self, p: usize, r: usize, v: usize) -> Fact {
        debug_assert!(p < self.perms && r < self.regs && v < self.vals);
        Fact((p * self.per_perm + r * self.vals + v) as u32)
    }

    /// Flag facts of copy `p`: `(lt, ¬lt, gt, ¬gt)`.
    pub fn flags(&self, p: usize) -> (Fact, Fact, Fact, Fact) {
        let base = (p * self.per_perm + self.regs * self.vals) as u32;
        (Fact(base), Fact(base + 1), Fact(base + 2), Fact(base + 3))
    }

    /// Total fact count.
    pub fn num_facts(&self) -> usize {
        self.perms * self.per_perm
    }
}

/// Builds the `Plan-Parallel` problem for `machine`. The returned
/// instruction list is parallel to `Problem::actions`, so a plan maps
/// directly to a [`Program`].
pub fn encode_synthesis(machine: &Machine) -> (Problem, Vec<Instr>, Layout) {
    let perms = sortsynth_isa::permutations(machine.n());
    let layout = Layout::new(machine, perms.len());
    let n = machine.n() as usize;
    let regs = layout.regs;

    let mut init = Vec::new();
    for (p, perm) in perms.iter().enumerate() {
        for r in 0..regs {
            // Scratch registers (r >= n) start zeroed.
            let v = perm.get(r).map_or(0, |&pv| pv as usize);
            init.push(layout.x(p, r, v));
        }
        let (_, not_lt, _, not_gt) = layout.flags(p);
        init.push(not_lt);
        init.push(not_gt);
    }

    let mut goal = Vec::new();
    for p in 0..perms.len() {
        for r in 0..n {
            goal.push(layout.x(p, r, r + 1));
        }
    }

    let instrs = machine.actions();
    let actions = instrs
        .iter()
        .map(|&instr| encode_action(machine, &layout, instr))
        .collect();

    (
        Problem {
            num_facts: layout.num_facts(),
            init,
            goal,
            actions,
        },
        instrs,
        layout,
    )
}

fn encode_action(machine: &Machine, layout: &Layout, instr: Instr) -> Action {
    let d = instr.dst.index() as usize;
    let s = instr.src.index() as usize;
    let vals = layout.vals;
    let mut effects = Vec::new();
    for p in 0..layout.perms {
        let (lt, not_lt, gt, not_gt) = layout.flags(p);
        match instr.op {
            Op::Mov => {
                for v in 0..vals {
                    effects.push(write_effect(layout, p, d, v, vec![layout.x(p, s, v)]));
                }
            }
            Op::Cmp => {
                for v1 in 0..vals {
                    for v2 in 0..vals {
                        let when = vec![layout.x(p, d, v1), layout.x(p, s, v2)];
                        let (add, del) = match v1.cmp(&v2) {
                            std::cmp::Ordering::Less => (vec![lt, not_gt], vec![not_lt, gt]),
                            std::cmp::Ordering::Greater => (vec![gt, not_lt], vec![not_gt, lt]),
                            std::cmp::Ordering::Equal => (vec![not_lt, not_gt], vec![lt, gt]),
                        };
                        effects.push(ConditionalEffect { when, add, del });
                    }
                }
            }
            Op::Cmovl | Op::Cmovg => {
                let flag = if instr.op == Op::Cmovl { lt } else { gt };
                for v in 0..vals {
                    effects.push(write_effect(layout, p, d, v, vec![flag, layout.x(p, s, v)]));
                }
            }
            Op::Min | Op::Max => {
                for v1 in 0..vals {
                    for v2 in 0..vals {
                        let result = if instr.op == Op::Min {
                            v1.min(v2)
                        } else {
                            v1.max(v2)
                        };
                        effects.push(write_effect_with(
                            layout,
                            p,
                            d,
                            result,
                            vec![layout.x(p, d, v1), layout.x(p, s, v2)],
                        ));
                    }
                }
            }
        }
    }
    Action {
        name: machine.format_instr(instr),
        pre: Vec::new(),
        effects,
    }
}

/// Effect: under `when`, register `(p, d)` becomes `v` (add the value fact,
/// delete all others).
fn write_effect(
    layout: &Layout,
    p: usize,
    d: usize,
    v: usize,
    when: Vec<Fact>,
) -> ConditionalEffect {
    write_effect_with(layout, p, d, v, when)
}

fn write_effect_with(
    layout: &Layout,
    p: usize,
    d: usize,
    v: usize,
    when: Vec<Fact>,
) -> ConditionalEffect {
    let del = (0..layout.vals)
        .filter(|&w| w != v)
        .map(|w| layout.x(p, d, w))
        .collect();
    ConditionalEffect {
        when,
        add: vec![layout.x(p, d, v)],
        del,
    }
}

/// Converts a plan (action indices) back into a kernel program.
pub fn plan_to_program(plan: &[usize], instrs: &[Instr]) -> Program {
    plan.iter().map(|&i| instrs[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{solve, PlanHeuristic, PlanLimits, PlanOutcome, PlanStrategy};
    use sortsynth_isa::IsaMode;

    #[test]
    fn layout_facts_are_disjoint() {
        let machine = Machine::new(3, 1, IsaMode::Cmov);
        let layout = Layout::new(&machine, 6);
        let mut seen = std::collections::HashSet::new();
        for p in 0..6 {
            for r in 0..4 {
                for v in 0..4 {
                    assert!(seen.insert(layout.x(p, r, v)));
                }
            }
            let (a, b, c, d) = layout.flags(p);
            for f in [a, b, c, d] {
                assert!(seen.insert(f));
            }
        }
        assert_eq!(seen.len(), layout.num_facts());
    }

    #[test]
    fn executing_a_known_kernel_as_a_plan_reaches_the_goal() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (problem, instrs, _) = encode_synthesis(&machine);
        let kernel = machine
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap();
        let plan: Vec<usize> = kernel
            .iter()
            .map(|i| {
                instrs
                    .iter()
                    .position(|j| j == i)
                    .expect("kernel uses canonical actions")
            })
            .collect();
        assert!(problem.validate(&plan));
    }

    #[test]
    fn bfs_planner_synthesizes_the_n2_kernel() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (problem, instrs, _) = encode_synthesis(&machine);
        let result = solve(&problem, PlanStrategy::Bfs, PlanLimits::default());
        assert_eq!(result.outcome, PlanOutcome::Solved);
        let plan = result.plan.expect("solved");
        assert_eq!(plan.len(), 4, "BFS finds the optimal plan length");
        let prog = plan_to_program(&plan, &instrs);
        assert!(
            machine.is_correct(&prog),
            "{}",
            machine.format_program(&prog)
        );
    }

    #[test]
    fn heuristic_planners_synthesize_the_n2_kernel() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (problem, instrs, _) = encode_synthesis(&machine);
        for strategy in [
            PlanStrategy::Gbfs(PlanHeuristic::GoalCount),
            PlanStrategy::Gbfs(PlanHeuristic::HAdd),
            PlanStrategy::AStar(PlanHeuristic::HMax),
        ] {
            let result = solve(&problem, strategy, PlanLimits::default());
            assert_eq!(result.outcome, PlanOutcome::Solved, "{strategy:?}");
            let prog = plan_to_program(&result.plan.expect("solved"), &instrs);
            assert!(machine.is_correct(&prog), "{strategy:?}");
        }
    }
}
