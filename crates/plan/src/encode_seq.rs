//! The `Plan-Seq` encoding (§5.2): commit a program, then replay it on each
//! permutation one after another.
//!
//! Where `Plan-Parallel` transforms every permutation copy simultaneously
//! with conditional effects, the linearized formulation splits planning
//! into phases:
//!
//! 1. **Build**: `commit(t, a)` actions choose instruction `a` for program
//!    position `t` (facts `chosen(t, a)`), left to right.
//! 2. **Replay**: for each permutation in turn, `exec(t, a)` actions (whose
//!    precondition includes `chosen(t, a)`) apply the committed instruction
//!    to a *single* register-file copy.
//! 3. **Verify**: after position `L`, a `finish(p)` action requires the
//!    registers to be sorted, records `verified(p)`, and resets the
//!    registers to the next permutation's initial values.
//!
//! The goal demands `verified(p)` for every permutation, so a plan exists
//! iff a correct kernel of exactly `len` instructions exists — the same
//! semantics as `Plan-Parallel`, explored through a very different (and,
//! as the paper observes, planner-friendlier) state space.

use sortsynth_isa::{Instr, Machine, Op, Program};

use crate::strips::{Action, ConditionalEffect, Fact, Problem};

/// Fact layout for the sequential encoding.
#[derive(Debug, Clone)]
pub struct SeqLayout {
    num_actions: usize,
    len: usize,
    regs: usize,
    vals: usize,
    perms: usize,
}

impl SeqLayout {
    /// `chosen(t, a)`.
    pub fn chosen(&self, t: usize, a: usize) -> Fact {
        Fact((t * self.num_actions + a) as u32)
    }

    /// Build-phase cursor `cursor(t)`, `t ∈ 0..=len`.
    pub fn cursor(&self, t: usize) -> Fact {
        Fact((self.len * self.num_actions + t) as u32)
    }

    /// Replay position `pos(t)`, `t ∈ 0..=len`.
    pub fn pos(&self, t: usize) -> Fact {
        Fact((self.len * self.num_actions + self.len + 1 + t) as u32)
    }

    /// Stage marker `stage(p)`, `p ∈ 0..perms`.
    pub fn stage(&self, p: usize) -> Fact {
        Fact((self.len * self.num_actions + 2 * (self.len + 1) + p) as u32)
    }

    /// `verified(p)`.
    pub fn verified(&self, p: usize) -> Fact {
        Fact((self.len * self.num_actions + 2 * (self.len + 1) + self.perms + p) as u32)
    }

    /// Register value fact `x(r, v)` for the single replay copy.
    pub fn x(&self, r: usize, v: usize) -> Fact {
        let base = self.len * self.num_actions + 2 * (self.len + 1) + 2 * self.perms;
        Fact((base + r * self.vals + v) as u32)
    }

    /// Flag facts `(lt, ¬lt, gt, ¬gt)`.
    pub fn flags(&self) -> (Fact, Fact, Fact, Fact) {
        let base = (self.len * self.num_actions
            + 2 * (self.len + 1)
            + 2 * self.perms
            + self.regs * self.vals) as u32;
        (Fact(base), Fact(base + 1), Fact(base + 2), Fact(base + 3))
    }

    /// Total fact count.
    pub fn num_facts(&self) -> usize {
        self.len * self.num_actions
            + 2 * (self.len + 1)
            + 2 * self.perms
            + self.regs * self.vals
            + 4
    }
}

/// Builds the `Plan-Seq` problem for a kernel of exactly `len`
/// instructions. Returns the problem, the instruction list referenced by
/// the `chosen` facts, and the layout.
pub fn encode_synthesis_seq(machine: &Machine, len: u32) -> (Problem, Vec<Instr>, SeqLayout) {
    let perms = sortsynth_isa::permutations(machine.n());
    let instrs = machine.actions();
    let layout = SeqLayout {
        num_actions: instrs.len(),
        len: len as usize,
        regs: machine.num_regs() as usize,
        vals: machine.n() as usize + 1,
        perms: perms.len(),
    };
    let n = machine.n() as usize;
    let (lt, not_lt, gt, not_gt) = layout.flags();

    // Initial state: build phase, cursor at 0.
    let init = vec![layout.cursor(0)];
    // Goal: every permutation verified.
    let goal: Vec<Fact> = (0..perms.len()).map(|p| layout.verified(p)).collect();

    let mut actions = Vec::new();

    // 1. commit(t, a).
    for t in 0..layout.len {
        for (a, instr) in instrs.iter().enumerate() {
            actions.push(Action {
                name: format!("commit[{t}] {}", machine.format_instr(*instr)),
                pre: vec![layout.cursor(t)],
                effects: vec![ConditionalEffect {
                    when: vec![],
                    add: vec![layout.chosen(t, a), layout.cursor(t + 1)],
                    del: vec![layout.cursor(t)],
                }],
            });
        }
    }

    // Register initialization effects for permutation `p`.
    let init_regs = |p: usize| -> (Vec<Fact>, Vec<Fact>) {
        let mut add = Vec::new();
        for r in 0..layout.regs {
            let v = perms[p].get(r).map_or(0, |&pv| pv as usize);
            add.push(layout.x(r, v));
        }
        add.push(not_lt);
        add.push(not_gt);
        // Delete every other register-value fact (harmless if absent).
        let mut del = Vec::new();
        for r in 0..layout.regs {
            let v_keep = perms[p].get(r).map_or(0, |&pv| pv as usize);
            for v in 0..layout.vals {
                if v != v_keep {
                    del.push(layout.x(r, v));
                }
            }
        }
        del.push(lt);
        del.push(gt);
        (add, del)
    };

    // 2. switch: build → replay of permutation 0.
    {
        let (add, del) = init_regs(0);
        let mut add = add;
        add.push(layout.stage(0));
        add.push(layout.pos(0));
        let mut del = del;
        del.push(layout.cursor(layout.len));
        actions.push(Action {
            name: "switch-to-replay".into(),
            pre: vec![layout.cursor(layout.len)],
            effects: vec![ConditionalEffect {
                when: vec![],
                add,
                del,
            }],
        });
    }

    // 3. exec(t, a): replay the committed instruction on the single copy.
    for t in 0..layout.len {
        for (a, instr) in instrs.iter().enumerate() {
            let d = instr.dst.index() as usize;
            let s = instr.src.index() as usize;
            let mut effects = vec![ConditionalEffect {
                when: vec![],
                add: vec![layout.pos(t + 1)],
                del: vec![layout.pos(t)],
            }];
            let write = |v: usize, when: Vec<Fact>| ConditionalEffect {
                when,
                add: vec![layout.x(d, v)],
                del: (0..layout.vals)
                    .filter(|&w| w != v)
                    .map(|w| layout.x(d, w))
                    .collect(),
            };
            match instr.op {
                Op::Mov => {
                    for v in 0..layout.vals {
                        effects.push(write(v, vec![layout.x(s, v)]));
                    }
                }
                Op::Cmp => {
                    for v1 in 0..layout.vals {
                        for v2 in 0..layout.vals {
                            let when = vec![layout.x(d, v1), layout.x(s, v2)];
                            let (add, del) = match v1.cmp(&v2) {
                                std::cmp::Ordering::Less => (vec![lt, not_gt], vec![not_lt, gt]),
                                std::cmp::Ordering::Greater => (vec![gt, not_lt], vec![not_gt, lt]),
                                std::cmp::Ordering::Equal => (vec![not_lt, not_gt], vec![lt, gt]),
                            };
                            effects.push(ConditionalEffect { when, add, del });
                        }
                    }
                }
                Op::Cmovl | Op::Cmovg => {
                    let flag = if instr.op == Op::Cmovl { lt } else { gt };
                    for v in 0..layout.vals {
                        effects.push(write(v, vec![flag, layout.x(s, v)]));
                    }
                }
                Op::Min | Op::Max => {
                    for v1 in 0..layout.vals {
                        for v2 in 0..layout.vals {
                            let result = if instr.op == Op::Min {
                                v1.min(v2)
                            } else {
                                v1.max(v2)
                            };
                            effects.push(write(result, vec![layout.x(d, v1), layout.x(s, v2)]));
                        }
                    }
                }
            }
            actions.push(Action {
                name: format!("exec[{t}] {}", machine.format_instr(*instr)),
                pre: vec![layout.pos(t), layout.chosen(t, a)],
                effects,
            });
        }
    }

    // 4. finish(p): registers sorted → verified, reset to the next
    //    permutation (or stop after the last).
    for p in 0..perms.len() {
        let mut pre = vec![layout.pos(layout.len), layout.stage(p)];
        for r in 0..n {
            pre.push(layout.x(r, r + 1));
        }
        let mut add = vec![layout.verified(p)];
        let mut del = vec![layout.pos(layout.len), layout.stage(p)];
        if p + 1 < perms.len() {
            let (radd, rdel) = init_regs(p + 1);
            add.extend(radd);
            add.push(layout.stage(p + 1));
            add.push(layout.pos(0));
            del.extend(rdel);
        }
        actions.push(Action {
            name: format!("finish perm {p}"),
            pre,
            effects: vec![ConditionalEffect {
                when: vec![],
                add,
                del,
            }],
        });
    }

    (
        Problem {
            num_facts: layout.num_facts(),
            init,
            goal,
            actions,
        },
        instrs,
        layout,
    )
}

/// Extracts the committed kernel from a plan using the fact layout (walks
/// the plan and records each `commit`'s chosen instruction).
pub fn seq_plan_program(
    plan: &[usize],
    problem: &Problem,
    instrs: &[Instr],
    layout: &SeqLayout,
) -> Program {
    let mut slots: Vec<Option<Instr>> = vec![None; layout.len];
    for &ai in plan {
        let action = &problem.actions[ai];
        // Commit actions add exactly one chosen(t, a) fact.
        for eff in &action.effects {
            for &f in &eff.add {
                let idx = f.0 as usize;
                if idx < layout.len * layout_actions(layout) {
                    let t = idx / layout_actions(layout);
                    let a = idx % layout_actions(layout);
                    slots[t] = Some(instrs[a]);
                }
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("plan committed every position"))
        .collect()
}

fn layout_actions(layout: &SeqLayout) -> usize {
    layout.num_actions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{solve, PlanHeuristic, PlanLimits, PlanOutcome, PlanStrategy};
    use sortsynth_isa::IsaMode;

    #[test]
    fn seq_layout_facts_are_disjoint() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (_, instrs, layout) = encode_synthesis_seq(&machine, 4);
        let mut seen = std::collections::HashSet::new();
        for t in 0..4 {
            for a in 0..instrs.len() {
                assert!(seen.insert(layout.chosen(t, a)));
            }
        }
        for t in 0..=4 {
            assert!(seen.insert(layout.cursor(t)));
            assert!(seen.insert(layout.pos(t)));
        }
        for p in 0..2 {
            assert!(seen.insert(layout.stage(p)));
            assert!(seen.insert(layout.verified(p)));
        }
        for r in 0..3 {
            for v in 0..3 {
                assert!(seen.insert(layout.x(r, v)));
            }
        }
        let (a, b, c, d) = layout.flags();
        for f in [a, b, c, d] {
            assert!(seen.insert(f));
        }
        assert_eq!(seen.len(), layout.num_facts());
    }

    #[test]
    fn committed_kernel_replays_to_the_goal() {
        // Hand-drive the plan for the known CAS and validate it.
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (problem, instrs, _layout) = encode_synthesis_seq(&machine, 4);
        let kernel = machine
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap();
        let mut plan: Vec<usize> = Vec::new();
        // Commits: action index = t * |instrs| + a.
        for (t, instr) in kernel.iter().enumerate() {
            let a = instrs.iter().position(|i| i == instr).expect("canonical");
            plan.push(t * instrs.len() + a);
        }
        // switch-to-replay.
        let switch = problem
            .actions
            .iter()
            .position(|a| a.name == "switch-to-replay")
            .expect("switch exists");
        plan.push(switch);
        // Replays and finishes for both permutations.
        for p in 0..2 {
            for (t, instr) in kernel.iter().enumerate() {
                let a = instrs.iter().position(|i| i == instr).expect("canonical");
                let exec = problem
                    .actions
                    .iter()
                    .position(|act| {
                        act.name == format!("exec[{t}] {}", machine.format_instr(*instr))
                    })
                    .expect("exec action exists");
                let _ = a;
                plan.push(exec);
            }
            let finish = problem
                .actions
                .iter()
                .position(|act| act.name == format!("finish perm {p}"))
                .expect("finish exists");
            plan.push(finish);
        }
        assert!(
            problem.validate(&plan),
            "hand-built Plan-Seq plan validates"
        );
    }

    #[test]
    fn gbfs_hadd_solves_plan_seq_for_n2() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (problem, instrs, layout) = encode_synthesis_seq(&machine, 4);
        let result = solve(
            &problem,
            PlanStrategy::Gbfs(PlanHeuristic::HAdd),
            PlanLimits {
                max_nodes: Some(5_000_000),
                timeout: Some(std::time::Duration::from_secs(120)),
                ..PlanLimits::default()
            },
        );
        assert_eq!(result.outcome, PlanOutcome::Solved, "stats: {result:?}");
        let plan = result.plan.expect("solved");
        let prog = seq_plan_program(&plan, &problem, &instrs, &layout);
        assert_eq!(prog.len(), 4);
        assert!(
            machine.is_correct(&prog),
            "{}",
            machine.format_program(&prog)
        );
    }
}
