//! Classical-planning baseline for sorting-kernel synthesis (§5.2).
//!
//! The paper formulates kernel synthesis in PDDL and benchmarks
//! fast-downward, LAMA, Scorpion, and CPDDL on it. Those systems are
//! forward state-space searches over grounded STRIPS models; this crate
//! provides that machinery from scratch —
//!
//! * [`strips`] — propositional states, actions with conditional effects,
//!   plan validation;
//! * [`planner`] — BFS, greedy best-first, and A* over goal-count / h_add /
//!   h_max delete-relaxation heuristics;
//! * [`encode`] — the `Plan-Parallel` encoding: one fact per
//!   (permutation-copy, register, value), one action per machine
//!   instruction, conditional effects mirroring the instruction semantics
//!   on every copy at once.
//!
//! The paper's `Plan-Seq` linearization exists because several PDDL
//! planners handle conditional effects poorly; our native planner supports
//! them directly, so the parallel encoding is the faithful representative
//! (see DESIGN.md for the substitution note).
//!
//! # Example
//!
//! ```
//! use sortsynth_isa::{IsaMode, Machine};
//! use sortsynth_plan::{encode_synthesis, plan_to_program, solve, PlanLimits, PlanStrategy};
//!
//! let machine = Machine::new(2, 1, IsaMode::Cmov);
//! let (problem, instrs, _) = encode_synthesis(&machine);
//! let result = solve(&problem, PlanStrategy::Bfs, PlanLimits::default());
//! let prog = plan_to_program(&result.plan.expect("n = 2 plans exist"), &instrs);
//! assert!(machine.is_correct(&prog));
//! ```

pub mod encode;
pub mod encode_seq;
pub mod planner;
pub mod strips;

pub use encode::{encode_synthesis, plan_to_program, Layout};
pub use encode_seq::{encode_synthesis_seq, seq_plan_program, SeqLayout};
pub use planner::{solve, PlanHeuristic, PlanLimits, PlanOutcome, PlanResult, PlanStrategy};
pub use strips::{Action, ConditionalEffect, Fact, Problem, State};
