//! Forward state-space planners: BFS, greedy best-first, and A* over
//! goal-count / h_add / h_max delete-relaxation heuristics — the algorithm
//! family behind the planners the paper benchmarks (§5.2).

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::{Duration, Instant};

use sortsynth_search::SearchBudget;

use crate::strips::{Problem, State};

/// Delete-relaxation heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanHeuristic {
    /// Number of unsatisfied goal facts (cheap, uninformative).
    GoalCount,
    /// Additive relaxation cost: sums fact costs (inadmissible, strong —
    /// the core of FF/LAMA-style planners).
    HAdd,
    /// Max relaxation cost (admissible: A* with it is optimal).
    HMax,
}

/// Search strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Breadth-first search (optimal, exhaustive).
    Bfs,
    /// Greedy best-first on the heuristic alone.
    Gbfs(PlanHeuristic),
    /// A*: `f = g + h`.
    AStar(PlanHeuristic),
}

/// Why a planning run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOutcome {
    /// A plan was found.
    Solved,
    /// The reachable space was exhausted: no plan exists.
    Unsolvable,
    /// A node or time budget expired.
    Budget,
}

/// Result of [`solve`].
#[derive(Debug, Clone)]
pub struct PlanResult {
    /// Action indices of the plan, if solved.
    pub plan: Option<Vec<usize>>,
    /// How the run ended.
    pub outcome: PlanOutcome,
    /// States expanded.
    pub expanded: u64,
    /// States generated.
    pub generated: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Search budgets.
#[derive(Debug, Clone, Default)]
pub struct PlanLimits {
    /// Maximum generated states.
    pub max_nodes: Option<u64>,
    /// Wall-clock limit.
    pub timeout: Option<Duration>,
    /// Cooperative budget, polled once per expansion: a portfolio race (or
    /// a request deadline) stops the planner at the next expansion instead
    /// of waiting out the node budget.
    pub budget: SearchBudget,
}

/// A search node: the state, the parent link `(node index, action index)`,
/// and the g-cost (plan depth).
type SearchNode = (State, Option<(u32, usize)>, u32);

/// Solves `problem` with the given strategy.
pub fn solve(problem: &Problem, strategy: PlanStrategy, limits: PlanLimits) -> PlanResult {
    let start = Instant::now();
    let deadline = limits.timeout.map(|t| start + t);
    let init = problem.initial_state();

    let mut expanded = 0u64;
    let mut generated = 1u64;
    // parent map: state -> (parent state index, action)
    let mut nodes: Vec<SearchNode> = vec![(init.clone(), None, 0)];
    let mut seen: HashMap<State, u32> = HashMap::new();
    seen.insert(init.clone(), 0);

    if problem.is_goal(&init) {
        return PlanResult {
            plan: Some(Vec::new()),
            outcome: PlanOutcome::Solved,
            expanded,
            generated,
            elapsed: start.elapsed(),
        };
    }

    let heuristic = |state: &State| -> f64 {
        match strategy {
            PlanStrategy::Bfs => 0.0,
            PlanStrategy::Gbfs(h) | PlanStrategy::AStar(h) => evaluate(problem, state, h),
        }
    };

    // Unified open list: BFS uses a queue; heuristic searches use a heap
    // keyed on f.
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, u32)> = BinaryHeap::new();
    let use_heap = !matches!(strategy, PlanStrategy::Bfs);
    if use_heap {
        let f = priority(strategy, 0, heuristic(&init));
        heap.push((std::cmp::Reverse(f), 0));
    } else {
        queue.push_back(0);
    }

    loop {
        let current = if use_heap {
            match heap.pop() {
                Some((_, idx)) => idx,
                None => {
                    return PlanResult {
                        plan: None,
                        outcome: PlanOutcome::Unsolvable,
                        expanded,
                        generated,
                        elapsed: start.elapsed(),
                    }
                }
            }
        } else {
            match queue.pop_front() {
                Some(idx) => idx,
                None => {
                    return PlanResult {
                        plan: None,
                        outcome: PlanOutcome::Unsolvable,
                        expanded,
                        generated,
                        elapsed: start.elapsed(),
                    }
                }
            }
        };
        expanded += 1;

        let (state, _, g) = nodes[current as usize].clone();
        for (ai, action) in problem.actions.iter().enumerate() {
            if !problem.applicable(&state, action) {
                continue;
            }
            let succ = problem.apply(&state, action);
            generated += 1;
            if seen.contains_key(&succ) {
                continue;
            }
            let idx = nodes.len() as u32;
            seen.insert(succ.clone(), idx);
            let is_goal = problem.is_goal(&succ);
            nodes.push((succ.clone(), Some((current, ai)), g + 1));
            if is_goal {
                return PlanResult {
                    plan: Some(extract_plan(&nodes, idx)),
                    outcome: PlanOutcome::Solved,
                    expanded,
                    generated,
                    elapsed: start.elapsed(),
                };
            }
            if use_heap {
                let f = priority(strategy, g + 1, heuristic(&succ));
                heap.push((std::cmp::Reverse(f), idx));
            } else {
                queue.push_back(idx);
            }
        }

        if let Some(max) = limits.max_nodes {
            if generated >= max {
                return PlanResult {
                    plan: None,
                    outcome: PlanOutcome::Budget,
                    expanded,
                    generated,
                    elapsed: start.elapsed(),
                };
            }
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return PlanResult {
                    plan: None,
                    outcome: PlanOutcome::Budget,
                    expanded,
                    generated,
                    elapsed: start.elapsed(),
                };
            }
        }
        if limits.budget.is_exhausted() {
            return PlanResult {
                plan: None,
                outcome: PlanOutcome::Budget,
                expanded,
                generated,
                elapsed: start.elapsed(),
            };
        }
    }
}

fn priority(strategy: PlanStrategy, g: u32, h: f64) -> u64 {
    // Scale h to keep integer ordering stable; clamp so dead-end states
    // (h = ∞) stay representable without overflowing the combined key.
    let h = (h.min(1e12) * 1024.0) as u64;
    match strategy {
        PlanStrategy::Bfs => g as u64,
        PlanStrategy::Gbfs(_) => h,
        PlanStrategy::AStar(_) => (g as u64) * 1024 + h,
    }
}

fn extract_plan(nodes: &[SearchNode], mut idx: u32) -> Vec<usize> {
    let mut plan = Vec::new();
    while let Some((parent, action)) = nodes[idx as usize].1 {
        plan.push(action);
        idx = parent;
    }
    plan.reverse();
    plan
}

/// Delete-relaxation fact costs: ignore deletes, treat conditional-effect
/// conditions as extra preconditions of that effect, and iterate to a fixed
/// point. `HAdd` sums precondition costs, `HMax` maximizes.
fn evaluate(problem: &Problem, state: &State, heuristic: PlanHeuristic) -> f64 {
    if heuristic == PlanHeuristic::GoalCount {
        return state.missing(&problem.goal) as f64;
    }
    const INF: f64 = 1e18;
    let mut cost = vec![INF; problem.num_facts];
    for f in 0..problem.num_facts as u32 {
        if state.holds(crate::strips::Fact(f)) {
            cost[f as usize] = 0.0;
        }
    }
    let combine = |costs: &[f64], facts: &[crate::strips::Fact]| -> f64 {
        let mut acc: f64 = 0.0;
        for &f in facts {
            let c = costs[f.0 as usize];
            if c >= INF {
                return INF;
            }
            acc = match heuristic {
                PlanHeuristic::HAdd => acc + c,
                _ => acc.max(c),
            };
        }
        acc
    };
    loop {
        let mut changed = false;
        for action in &problem.actions {
            let pre_cost = combine(&cost, &action.pre);
            if pre_cost >= INF {
                continue;
            }
            for eff in &action.effects {
                let when_cost = combine(&cost, &eff.when);
                if when_cost >= INF {
                    continue;
                }
                let trigger = match heuristic {
                    PlanHeuristic::HAdd => pre_cost + when_cost + 1.0,
                    _ => pre_cost.max(when_cost) + 1.0,
                };
                for &f in &eff.add {
                    if trigger < cost[f.0 as usize] {
                        cost[f.0 as usize] = trigger;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    combine(&cost, &problem.goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strips::{Action, ConditionalEffect, Fact};

    fn chain(len: u32) -> Problem {
        Problem {
            num_facts: len as usize + 1,
            init: vec![Fact(0)],
            goal: vec![Fact(len)],
            actions: (0..len)
                .map(|i| Action {
                    name: format!("step-{i}"),
                    pre: vec![Fact(i)],
                    effects: vec![ConditionalEffect {
                        when: vec![],
                        add: vec![Fact(i + 1)],
                        del: vec![Fact(i)],
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn all_strategies_solve_the_chain() {
        let p = chain(6);
        for strategy in [
            PlanStrategy::Bfs,
            PlanStrategy::Gbfs(PlanHeuristic::GoalCount),
            PlanStrategy::Gbfs(PlanHeuristic::HAdd),
            PlanStrategy::AStar(PlanHeuristic::HMax),
            PlanStrategy::AStar(PlanHeuristic::HAdd),
        ] {
            let r = solve(&p, strategy, PlanLimits::default());
            assert_eq!(r.outcome, PlanOutcome::Solved, "{strategy:?}");
            let plan = r.plan.expect("solved");
            assert_eq!(plan.len(), 6, "{strategy:?}");
            assert!(p.validate(&plan));
        }
    }

    #[test]
    fn unsolvable_is_detected() {
        let mut p = chain(3);
        p.goal = vec![Fact(3), Fact(0)]; // 0 is deleted on the only path
        let r = solve(&p, PlanStrategy::Bfs, PlanLimits::default());
        assert_eq!(r.outcome, PlanOutcome::Unsolvable);
    }

    #[test]
    fn budget_reports() {
        let p = chain(20);
        let r = solve(
            &p,
            PlanStrategy::Bfs,
            PlanLimits {
                max_nodes: Some(3),
                ..PlanLimits::default()
            },
        );
        assert_eq!(r.outcome, PlanOutcome::Budget);
    }

    #[test]
    fn cancelled_budget_reports_budget() {
        let p = chain(20);
        let (budget, handle) = SearchBudget::unlimited().cancellable();
        handle.cancel();
        let r = solve(
            &p,
            PlanStrategy::Bfs,
            PlanLimits {
                budget,
                ..PlanLimits::default()
            },
        );
        assert_eq!(r.outcome, PlanOutcome::Budget);
        assert!(r.expanded <= 1, "cancellation is seen at the first check");
    }

    #[test]
    fn heuristics_estimate_chain_distance() {
        let p = chain(5);
        let init = p.initial_state();
        assert_eq!(evaluate(&p, &init, PlanHeuristic::GoalCount), 1.0);
        assert_eq!(evaluate(&p, &init, PlanHeuristic::HMax), 5.0);
        assert_eq!(evaluate(&p, &init, PlanHeuristic::HAdd), 5.0);
        let goal_state = State::from_facts(p.num_facts, &p.goal);
        assert_eq!(evaluate(&p, &goal_state, PlanHeuristic::HMax), 0.0);
    }

    #[test]
    fn hmax_is_admissible_on_the_chain() {
        let p = chain(8);
        let mut state = p.initial_state();
        for (dist_to_go, ai) in (0..8).rev().zip(0..8) {
            let h = evaluate(&p, &state, PlanHeuristic::HMax);
            assert!(h <= (dist_to_go + 1) as f64);
            state = p.apply(&state, &p.actions[ai]);
        }
    }
}
