//! Monte-Carlo tree search for sorting-kernel synthesis — the unlearned
//! skeleton of AlphaDev (Mankowitz et al.), the paper's main point of
//! comparison.
//!
//! AlphaDev couples MCTS with a learned policy/value network trained on a
//! TPU fleet; neither the network weights nor the training pipeline are
//! public, so (like the paper, which could only quote AlphaDev's published
//! numbers) we implement the *search* component: UCT selection over partial
//! programs, expansion over the symmetry-reduced action set, random
//! rollouts, and a reward that mixes correctness progress (the fraction of
//! permutations already collapsed) with a brevity bonus.
//!
//! This baseline lets the harness demonstrate the paper's central claim
//! from the other side: without learned guidance, MCTS needs far more
//! state evaluations than the enumerative search to find kernels at all.
//!
//! # Example
//!
//! ```
//! use sortsynth_isa::{IsaMode, Machine};
//! use sortsynth_mcts::{run, MctsConfig};
//!
//! let machine = Machine::new(2, 1, IsaMode::Cmov);
//! let result = run(&MctsConfig {
//!     machine: machine.clone(),
//!     max_len: 6,
//!     iterations: 20_000,
//!     exploration: 1.4,
//!     seed: 1,
//!     budget: Default::default(),
//! });
//! if let Some(prog) = &result.best_program {
//!     assert!(machine.is_correct(prog));
//! }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortsynth_isa::{Instr, Machine, Program};
use sortsynth_search::{SearchBudget, StateSet};

/// Configuration for one MCTS run.
#[derive(Debug, Clone)]
pub struct MctsConfig {
    /// The target machine.
    pub machine: Machine,
    /// Maximum program length (episode horizon).
    pub max_len: u32,
    /// MCTS iterations (each = one selection/expansion/rollout/backup).
    pub iterations: u64,
    /// UCT exploration constant.
    pub exploration: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cooperative budget: polled once per iteration, so a portfolio race
    /// (or a request deadline) stops the run at the next iteration boundary.
    pub budget: SearchBudget,
}

/// Result of [`run`].
#[derive(Debug, Clone)]
pub struct MctsResult {
    /// The shortest correct program discovered, if any.
    pub best_program: Option<Program>,
    /// Iterations executed (lower than configured when the budget stopped
    /// the run early).
    pub iterations_run: u64,
    /// Tree nodes allocated.
    pub nodes: usize,
    /// Rollouts that reached a sorted state.
    pub successful_rollouts: u64,
}

struct Node {
    state: StateSet,
    depth: u32,
    children: Vec<(u8, u32)>, // (action index, node index)
    untried: Vec<u8>,
    visits: u64,
    total_reward: f64,
}

/// Runs MCTS synthesis.
pub fn run(cfg: &MctsConfig) -> MctsResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let machine = &cfg.machine;
    let actions = machine.actions();
    let init = StateSet::initial(machine);
    let init_perm = init.perm_count(machine) as f64;

    let mut nodes = vec![Node {
        state: init,
        depth: 0,
        children: Vec::new(),
        untried: (0..actions.len() as u8).collect(),
        visits: 0,
        total_reward: 0.0,
    }];
    let mut best: Option<Program> = None;
    let mut successful = 0u64;

    let mut iterations_run = 0u64;
    for _ in 0..cfg.iterations {
        if cfg.budget.is_exhausted() {
            break;
        }
        iterations_run += 1;
        // Selection: walk down fully-expanded nodes by UCT.
        let mut path = vec![0u32];
        let mut current = 0u32;
        loop {
            let node = &nodes[current as usize];
            if node.depth >= cfg.max_len || !node.untried.is_empty() || node.children.is_empty() {
                break;
            }
            let parent_visits = node.visits.max(1) as f64;
            let c = cfg.exploration;
            let (_, next) = node
                .children
                .iter()
                .copied()
                .max_by(|&(_, a), &(_, b)| {
                    let ua = uct(&nodes[a as usize], parent_visits, c);
                    let ub = uct(&nodes[b as usize], parent_visits, c);
                    ua.partial_cmp(&ub).expect("UCT values are finite")
                })
                .expect("non-empty children");
            current = next;
            path.push(current);
        }

        // Expansion: try one random untried action.
        let depth = nodes[current as usize].depth;
        if depth < cfg.max_len && !nodes[current as usize].untried.is_empty() {
            let pick = rng.gen_range(0..nodes[current as usize].untried.len());
            let ai = nodes[current as usize].untried.swap_remove(pick);
            let child_state = nodes[current as usize].state.apply(actions[ai as usize]);
            let child = Node {
                state: child_state,
                depth: depth + 1,
                children: Vec::new(),
                untried: (0..actions.len() as u8).collect(),
                visits: 0,
                total_reward: 0.0,
            };
            let child_idx = nodes.len() as u32;
            nodes.push(child);
            nodes[current as usize].children.push((ai, child_idx));
            current = child_idx;
            path.push(current);
        }

        // Rollout: random actions to the horizon, recording the suffix so a
        // lucky rollout yields a concrete program.
        let mut state = nodes[current as usize].state.clone();
        let mut rollout_len = nodes[current as usize].depth;
        let mut rollout_suffix: Vec<u8> = Vec::new();
        let mut solved_at: Option<u32> = None;
        if state.is_goal(machine) {
            solved_at = Some(rollout_len);
        }
        while solved_at.is_none() && rollout_len < cfg.max_len {
            // Rollout policy: sample a few candidates and avoid successors
            // that erase a value (which makes the episode unwinnable). This
            // is the hand-rolled stand-in for AlphaDev's learned policy
            // prior.
            let mut ai = rng.gen_range(0..actions.len());
            let mut succ = state.apply(actions[ai]);
            for _ in 0..8 {
                if !succ.has_erased_value(machine) {
                    break;
                }
                ai = rng.gen_range(0..actions.len());
                succ = state.apply(actions[ai]);
            }
            state = succ;
            rollout_suffix.push(ai as u8);
            rollout_len += 1;
            if state.is_goal(machine) {
                solved_at = Some(rollout_len);
            }
        }

        // Reward: 1 + brevity bonus on success, correctness progress
        // otherwise (AlphaDev's reward similarly mixes correctness and
        // latency terms).
        let reward = match solved_at {
            Some(len) => {
                successful += 1;
                1.0 + (cfg.max_len - len) as f64 / cfg.max_len as f64
            }
            None => {
                let perm = state.perm_count(machine) as f64;
                0.5 * (init_perm - perm) / init_perm
            }
        };

        // Solved: the program is the tree-path prefix plus the rollout
        // suffix up to the solve point.
        if solved_at.is_some() {
            let mut prog = program_for(&nodes, &path, &actions);
            prog.extend(rollout_suffix.iter().map(|&ai| actions[ai as usize]));
            debug_assert!(machine.is_correct(&prog));
            let better = best.as_ref().map(|b| prog.len() < b.len()).unwrap_or(true);
            if better {
                best = Some(prog);
            }
        }

        // Backup.
        for &idx in &path {
            let node = &mut nodes[idx as usize];
            node.visits += 1;
            node.total_reward += reward;
        }
    }

    MctsResult {
        best_program: best,
        iterations_run,
        nodes: nodes.len(),
        successful_rollouts: successful,
    }
}

fn uct(child: &Node, parent_visits: f64, c: f64) -> f64 {
    if child.visits == 0 {
        return f64::INFINITY;
    }
    let exploit = child.total_reward / child.visits as f64;
    let explore = c * (parent_visits.ln() / child.visits as f64).sqrt();
    exploit + explore
}

/// Reconstructs the instruction sequence along a root-to-node path.
fn program_for(nodes: &[Node], path: &[u32], actions: &[Instr]) -> Program {
    let mut prog = Program::new();
    for w in path.windows(2) {
        let parent = &nodes[w[0] as usize];
        let (ai, _) = parent
            .children
            .iter()
            .find(|&&(_, child)| child == w[1])
            .expect("path edges exist in the tree");
        prog.push(actions[*ai as usize]);
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn finds_the_n2_kernel() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let result = run(&MctsConfig {
            machine: machine.clone(),
            max_len: 6,
            iterations: 50_000,
            exploration: 1.4,
            seed: 5,
            budget: SearchBudget::unlimited(),
        });
        let prog = result.best_program.expect("n = 2 is in easy reach of MCTS");
        assert!(machine.is_correct(&prog));
        assert!(prog.len() <= 6);
        assert!(result.successful_rollouts > 0);
    }

    #[test]
    fn respects_the_horizon() {
        // With a horizon below the optimal length no program can be found.
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let result = run(&MctsConfig {
            machine,
            max_len: 3,
            iterations: 20_000,
            exploration: 1.4,
            seed: 6,
            budget: SearchBudget::unlimited(),
        });
        assert!(result.best_program.is_none());
        assert_eq!(result.successful_rollouts, 0);
    }

    #[test]
    fn cancelled_budget_stops_immediately() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (budget, handle) = SearchBudget::unlimited().cancellable();
        handle.cancel();
        let result = run(&MctsConfig {
            machine,
            max_len: 6,
            iterations: 1_000_000,
            exploration: 1.4,
            seed: 5,
            budget,
        });
        assert_eq!(result.iterations_run, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let cfg = MctsConfig {
            machine,
            max_len: 6,
            iterations: 5_000,
            exploration: 1.4,
            seed: 9,
            budget: SearchBudget::unlimited(),
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.best_program, b.best_program);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.successful_rollouts, b.successful_rollouts);
    }
}
