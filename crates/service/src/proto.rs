//! The wire protocol: length-prefixed JSON frames and the typed
//! request/response vocabulary.
//!
//! # Framing
//!
//! Every message is one frame: a `u32` big-endian payload length followed by
//! that many bytes of UTF-8 JSON. Frames above [`MAX_FRAME`] bytes are a
//! protocol error — the limit bounds per-connection memory and makes a
//! desynchronized stream fail fast instead of allocating garbage lengths.
//!
//! # Messages
//!
//! Requests carry an `"op"` tag (`ping`, `synth`, `check`, `analyze`,
//! `sleep`); responses carry a `"type"` tag. See [`Request`] and
//! [`Response`] for the shapes. The `sleep` op exists for load testing: it
//! occupies a worker for a bounded time without doing search work, which is
//! how the admission-control tests make overload deterministic.

use std::io::{self, ErrorKind, Read, Write};

use serde::{Deserialize, Error, Serialize, Value};
use sortsynth_cache::KernelQuery;
use sortsynth_isa::Machine;

/// Hard cap on one frame's payload (1 MiB).
pub const MAX_FRAME: u32 = 1 << 20;

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// Writes one frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(ErrorKind::InvalidInput, "frame too large"));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed the connection between messages).
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "torn frame header",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serializes a message and writes it as one frame.
pub fn write_message(writer: &mut impl Write, message: &impl Serialize) -> io::Result<()> {
    let payload = serde_json::to_vec(message).expect("value-tree serialization is infallible");
    write_frame(writer, &payload)
}

/// Reads one frame and parses it as `T`. `Ok(None)` on clean EOF.
pub fn read_message<T: Deserialize>(reader: &mut impl Read) -> io::Result<Option<T>> {
    let Some(payload) = read_frame(reader)? else {
        return Ok(None);
    };
    serde_json::from_slice(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("bad message: {e}")))
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Health check; answered with [`Response::Pong`].
    Ping,
    /// Synthesize (or fetch from cache) the kernel for `query`.
    Synth {
        /// The canonical query.
        query: KernelQuery,
        /// Per-request deadline in milliseconds, measured from admission.
        /// `None` uses the server's default.
        timeout_ms: Option<u64>,
        /// Synthesis route: a backend name (`astar`, `cegis`, …),
        /// `portfolio` to race the configured set, or `None` for the
        /// server's default route. Routing is advisory — the cache stays
        /// keyed by the query alone, so a cached answer is served
        /// regardless of the requested backend.
        backend: Option<String>,
    },
    /// Check a program's correctness on the full permutation suite.
    Check {
        /// The machine to check against.
        machine: Machine,
        /// The program, in `Machine::parse_program` syntax.
        program: String,
    },
    /// Static pipeline-throughput analysis of a program.
    Analyze {
        /// The machine the program targets.
        machine: Machine,
        /// The program, in `Machine::parse_program` syntax.
        program: String,
    },
    /// Occupy a worker for `ms` milliseconds (diagnostic; capped server-side).
    Sleep {
        /// How long to hold the worker.
        ms: u64,
    },
    /// Fetch the full Prometheus text exposition. Answered inline by the
    /// connection thread (bypassing the admission queue) so observability
    /// keeps working while the server is overloaded.
    Metrics,
    /// Fetch a compact live-gauges snapshot ([`StatsReply`]). Also answered
    /// inline.
    Stats,
    /// Attach to an in-flight synthesis of `query` and stream throttled
    /// [`Response::Progress`] frames until the search finishes. Rides the
    /// single-flight table: any number of watchers observe the one coalesced
    /// search without adding load. Answered inline by the connection thread
    /// (like `metrics`/`stats`) so attaching works even when the admission
    /// queue is full. If no matching flight exists, the server waits up to
    /// `wait_ms` for one to start before answering [`Response::Error`].
    Watch {
        /// The query whose flight to observe (same canonical form as
        /// [`Request::Synth`]).
        query: KernelQuery,
        /// The route the flight was admitted under (`None` for the default
        /// engine route) — watch keys match synth keys.
        backend: Option<String>,
        /// How long to wait for a flight to appear before giving up.
        /// `None` uses the server default.
        wait_ms: Option<u64>,
    },
}

/// Where a synth answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplySource {
    /// This request ran the search.
    Computed,
    /// Served from the kernel cache.
    Cache,
    /// Coalesced onto another in-flight identical request (single-flight).
    Coalesced,
}

impl ReplySource {
    fn wire_name(self) -> &'static str {
        match self {
            ReplySource::Computed => "computed",
            ReplySource::Cache => "cache",
            ReplySource::Coalesced => "coalesced",
        }
    }

    fn from_wire_name(name: &str) -> Option<Self> {
        match name {
            "computed" => Some(ReplySource::Computed),
            "cache" => Some(ReplySource::Cache),
            "coalesced" => Some(ReplySource::Coalesced),
            _ => None,
        }
    }
}

/// A completed synthesis answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReply {
    /// The kernel in `Machine::parse_program` syntax, or `None` if the
    /// search proved no program exists within the query's length bound.
    pub program: Option<String>,
    /// Length of the kernel, if one was found.
    pub found_len: Option<u32>,
    /// Whether the search configuration certifies minimality.
    pub minimal_certified: bool,
    /// Provenance of this answer.
    pub source: ReplySource,
    /// Wall-clock milliseconds of the producing search (0 for cache hits
    /// would lie, so cache hits report the *original* search time).
    pub search_millis: u64,
    /// The producing search needed the distance table but the machine was
    /// too large to build it, so the search ran with degraded pruning.
    /// Always `false` for cache/coalesced answers (no search ran).
    pub distance_table_skipped: bool,
    /// The backend that produced this answer (`astar`, `cegis`, …) when
    /// the request was routed through the backend dispatch layer; the
    /// portfolio winner's name for `portfolio` routes. `None` for the
    /// default engine path and for cache hits.
    pub backend: Option<String>,
}

/// Diagnostics returned when a request's deadline expired mid-search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutReply {
    /// States generated before the budget expired.
    pub generated: u64,
    /// States expanded before the budget expired.
    pub expanded: u64,
    /// Wall-clock milliseconds spent searching.
    pub elapsed_ms: u64,
    /// `true` if the budget was cancelled rather than timing out.
    pub cancelled: bool,
}

/// One row of the learned portfolio dispatch table: how an arm has fared
/// on a query shape (mirrors `sortsynth_portfolio::PolicyRow`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioRowReply {
    /// The query shape, canonically `n/scratch/mode` (e.g. `3/1/cmov`).
    pub shape: String,
    /// The backend's kebab-case name (e.g. `astar-par`).
    pub backend: String,
    /// Races this arm won for the shape.
    pub wins: u64,
    /// Races this arm completed without winning.
    pub losses: u64,
    /// Races this arm was cancelled in.
    pub cancelled: u64,
    /// Total wall-clock milliseconds this arm spent on the shape.
    pub total_millis: u64,
}

/// A live-gauges snapshot of the running server (reply to
/// [`Request::Stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Milliseconds since the server was bound.
    pub uptime_ms: u64,
    /// Jobs currently waiting in the admission queue.
    pub queue_depth: i64,
    /// Jobs currently executing on workers.
    pub inflight: i64,
    /// Requests accepted into the admission queue since start.
    pub requests_total: u64,
    /// Requests shed with [`Response::Overloaded`] since start.
    pub shed_total: u64,
    /// Worker panics caught and converted to error replies.
    pub worker_panics: u64,
    /// Searches actually started (cache hits and coalesced excluded).
    pub searches_started: u64,
    /// Requests coalesced onto an identical in-flight search.
    pub singleflight_coalesced: u64,
    /// In-memory cache hits.
    pub cache_memory_hits: u64,
    /// Disk-log hits promoted into memory.
    pub cache_disk_hits: u64,
    /// Lookups that missed both cache tiers.
    pub cache_misses: u64,
    /// Cache entries inserted.
    pub cache_insertions: u64,
    /// Entries evicted from the in-memory LRU front.
    pub cache_evictions: u64,
    /// Entries refused by the static-verification gate.
    pub cache_verify_rejected: u64,
    /// Disk promotions that skipped gate re-analysis via a valid gate stamp.
    pub cache_verify_skipped: u64,
    /// Portfolio races executed since start.
    pub portfolio_races: u64,
    /// Races that produced a verify-gated winner.
    pub portfolio_wins: u64,
    /// Races whose first wave missed and widened to the remaining arms.
    pub portfolio_widened: u64,
    /// The learned dispatch table, one row per (shape, backend) pair.
    pub portfolio: Vec<PortfolioRowReply>,
}

/// One shard's live memory/backlog state inside a [`ProgressReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardReply {
    /// Unique canonical states interned into the shard's arena.
    pub interned_states: u64,
    /// Bytes of assignment storage held by the shard's arena.
    pub arena_bytes: u64,
    /// The shard's open-list depth.
    pub open_depth: u64,
}

/// One streamed progress frame of an in-flight search (reply to
/// [`Request::Watch`]). The stream ends with the frame whose `finished`
/// is `true`; after that the connection returns to request/response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgressReply {
    /// Milliseconds since the observed search started.
    pub elapsed_millis: u64,
    /// States expanded so far.
    pub expanded: u64,
    /// States generated so far.
    pub generated: u64,
    /// Open (unexpanded) states at snapshot time.
    pub open: u64,
    /// Current frontier bound, if the search has started expanding.
    pub f_bound: Option<u64>,
    /// Successors dropped by viability checks so far.
    pub viability_pruned: u64,
    /// Successors dropped by the permutation-count cut so far.
    pub cut_pruned: u64,
    /// Successors dropped as duplicates so far.
    pub dedup_hits: u64,
    /// Successors skipped by the dead-write cut so far.
    pub dead_write_pruned: u64,
    /// Successors skipped by the symbolic value-flow cut so far.
    pub value_flow_pruned: u64,
    /// Open states whose spans were spilled to disk so far (0 unless the
    /// search runs under a memory budget).
    pub spilled_open: u64,
    /// Closed-set entries evicted to disk segments so far.
    pub spilled_closed: u64,
    /// Duplicates caught by delayed duplicate detection so far.
    pub ddd_dedup_hits: u64,
    /// Frontier states restored from a resume journal (0 for fresh runs).
    pub resumed_frontier_states: u64,
    /// Estimated resident bytes of the search.
    pub resident_bytes: u64,
    /// Bytes written to spill segments so far.
    pub spilled_bytes: u64,
    /// `true` on the stream's final frame.
    pub finished: bool,
    /// How the search ended (`Solved`, `Exhausted`, …); only on the final
    /// frame.
    pub outcome: Option<String>,
    /// Per-shard live memory levels (one entry for the sequential engine).
    pub shards: Vec<ShardReply>,
}

impl ProgressReply {
    /// Builds a wire frame from an engine snapshot.
    pub fn from_progress(p: &sortsynth_search::SearchProgress) -> Self {
        ProgressReply {
            elapsed_millis: p.elapsed.as_millis() as u64,
            expanded: p.expanded,
            generated: p.generated,
            open: p.open,
            f_bound: p.f_bound,
            viability_pruned: p.viability_pruned,
            cut_pruned: p.cut_pruned,
            dedup_hits: p.dedup_hits,
            dead_write_pruned: p.dead_write_pruned,
            value_flow_pruned: p.value_flow_pruned,
            spilled_open: p.spilled_open,
            spilled_closed: p.spilled_closed,
            ddd_dedup_hits: p.ddd_dedup_hits,
            resumed_frontier_states: p.resumed_frontier_states,
            resident_bytes: p.resident_bytes,
            spilled_bytes: p.spilled_bytes,
            finished: p.finished,
            outcome: p.outcome.map(|o| format!("{o:?}")),
            shards: p
                .shards
                .iter()
                .map(|s| ShardReply {
                    interned_states: s.interned_states,
                    arena_bytes: s.arena_bytes,
                    open_depth: s.open_depth,
                })
                .collect(),
        }
    }
}

/// A correctness-check answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReply {
    /// Whether the program sorts every permutation.
    pub correct: bool,
    /// Number of failing permutations.
    pub counterexamples: u64,
}

/// One static-analysis diagnostic (mirrors `sortsynth_verify::Diagnostic`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReply {
    /// Kebab-case lint kind (e.g. `dead-write`).
    pub kind: String,
    /// `error`, `warning`, or `info`.
    pub severity: String,
    /// Instruction index the diagnostic anchors to, if any.
    pub index: Option<u64>,
    /// Human-readable explanation.
    pub message: String,
}

/// A pipeline-analysis answer (mirrors `sortsynth_isa::PipelineReport`),
/// extended with the static verifier's verdict and lint report.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeReply {
    /// Steady-state cycles per kernel iteration.
    pub cycles_per_iteration: f64,
    /// Latency-weighted critical path (cycles).
    pub critical_path: u32,
    /// Port-pressure bound.
    pub port_bound: f64,
    /// Issue-width bound.
    pub issue_bound: f64,
    /// Whether latency (not ports/issue) limits throughput.
    pub latency_bound: bool,
    /// The static verifier's verdict (`sortsynth_verify::Verdict` wire
    /// name, e.g. `certified-network` or `refuted-zero-one`).
    pub verdict: String,
    /// Structured lint report, sorted by instruction index.
    pub lints: Vec<LintReply>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Synth`] when the search finished.
    Synth(SynthReply),
    /// Reply to [`Request::Check`].
    Check(CheckReply),
    /// Reply to [`Request::Analyze`].
    Analyze(AnalyzeReply),
    /// The request's deadline expired; partial diagnostics attached.
    Timeout(TimeoutReply),
    /// The admission queue was full; retry later.
    Overloaded,
    /// Reply to [`Request::Sleep`].
    Slept,
    /// Reply to [`Request::Metrics`]: the Prometheus text exposition.
    Metrics {
        /// The rendered exposition (format 0.0.4).
        text: String,
    },
    /// Reply to [`Request::Stats`].
    Stats(StatsReply),
    /// One streamed frame of an in-flight search (reply to
    /// [`Request::Watch`]; many frames per request).
    Progress(ProgressReply),
    /// The request was malformed or failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        match self {
            Request::Ping => Value::map([("op", s("ping"))]),
            Request::Synth {
                query,
                timeout_ms,
                backend,
            } => Value::map([
                ("op", s("synth")),
                ("query", query.serialize()),
                ("timeout_ms", timeout_ms.serialize()),
                ("backend", backend.serialize()),
            ]),
            Request::Check { machine, program } => Value::map([
                ("op", s("check")),
                ("machine", machine.serialize()),
                ("program", program.serialize()),
            ]),
            Request::Analyze { machine, program } => Value::map([
                ("op", s("analyze")),
                ("machine", machine.serialize()),
                ("program", program.serialize()),
            ]),
            Request::Sleep { ms } => Value::map([("op", s("sleep")), ("ms", ms.serialize())]),
            Request::Metrics => Value::map([("op", s("metrics"))]),
            Request::Stats => Value::map([("op", s("stats"))]),
            Request::Watch {
                query,
                backend,
                wait_ms,
            } => Value::map([
                ("op", s("watch")),
                ("query", query.serialize()),
                ("backend", backend.serialize()),
                ("wait_ms", wait_ms.serialize()),
            ]),
        }
    }
}

impl Deserialize for Request {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let op = String::deserialize(value.required("op")?)?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "synth" => Ok(Request::Synth {
                query: KernelQuery::deserialize(value.required("query")?)?,
                timeout_ms: match value.get("timeout_ms") {
                    None => None,
                    Some(v) => Option::<u64>::deserialize(v)?,
                },
                backend: match value.get("backend") {
                    None => None,
                    Some(v) => Option::<String>::deserialize(v)?,
                },
            }),
            "check" => Ok(Request::Check {
                machine: Machine::deserialize(value.required("machine")?)?,
                program: String::deserialize(value.required("program")?)?,
            }),
            "analyze" => Ok(Request::Analyze {
                machine: Machine::deserialize(value.required("machine")?)?,
                program: String::deserialize(value.required("program")?)?,
            }),
            "sleep" => Ok(Request::Sleep {
                ms: u64::deserialize(value.required("ms")?)?,
            }),
            "metrics" => Ok(Request::Metrics),
            "stats" => Ok(Request::Stats),
            "watch" => Ok(Request::Watch {
                query: KernelQuery::deserialize(value.required("query")?)?,
                backend: match value.get("backend") {
                    None => None,
                    Some(v) => Option::<String>::deserialize(v)?,
                },
                wait_ms: match value.get("wait_ms") {
                    None => None,
                    Some(v) => Option::<u64>::deserialize(v)?,
                },
            }),
            other => Err(Error::new(format!("unknown op `{other}`"))),
        }
    }
}

impl Serialize for LintReply {
    fn serialize(&self) -> Value {
        Value::map([
            ("kind", self.kind.serialize()),
            ("severity", self.severity.serialize()),
            ("index", self.index.serialize()),
            ("message", self.message.serialize()),
        ])
    }
}

impl Deserialize for LintReply {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(LintReply {
            kind: String::deserialize(value.required("kind")?)?,
            severity: String::deserialize(value.required("severity")?)?,
            index: Option::<u64>::deserialize(value.required("index")?)?,
            message: String::deserialize(value.required("message")?)?,
        })
    }
}

impl Serialize for PortfolioRowReply {
    fn serialize(&self) -> Value {
        Value::map([
            ("shape", self.shape.serialize()),
            ("backend", self.backend.serialize()),
            ("wins", self.wins.serialize()),
            ("losses", self.losses.serialize()),
            ("cancelled", self.cancelled.serialize()),
            ("total_millis", self.total_millis.serialize()),
        ])
    }
}

impl Deserialize for PortfolioRowReply {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(PortfolioRowReply {
            shape: String::deserialize(value.required("shape")?)?,
            backend: String::deserialize(value.required("backend")?)?,
            wins: u64::deserialize(value.required("wins")?)?,
            losses: u64::deserialize(value.required("losses")?)?,
            cancelled: u64::deserialize(value.required("cancelled")?)?,
            total_millis: u64::deserialize(value.required("total_millis")?)?,
        })
    }
}

impl Serialize for ShardReply {
    fn serialize(&self) -> Value {
        Value::map([
            ("interned_states", self.interned_states.serialize()),
            ("arena_bytes", self.arena_bytes.serialize()),
            ("open_depth", self.open_depth.serialize()),
        ])
    }
}

impl Deserialize for ShardReply {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(ShardReply {
            interned_states: u64::deserialize(value.required("interned_states")?)?,
            arena_bytes: u64::deserialize(value.required("arena_bytes")?)?,
            open_depth: u64::deserialize(value.required("open_depth")?)?,
        })
    }
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        match self {
            Response::Pong => Value::map([("type", s("pong"))]),
            Response::Synth(reply) => Value::map([
                ("type", s("synth")),
                ("program", reply.program.serialize()),
                ("found_len", reply.found_len.serialize()),
                ("minimal_certified", reply.minimal_certified.serialize()),
                ("source", s(reply.source.wire_name())),
                ("search_millis", reply.search_millis.serialize()),
                (
                    "distance_table_skipped",
                    reply.distance_table_skipped.serialize(),
                ),
                ("backend", reply.backend.serialize()),
            ]),
            Response::Check(reply) => Value::map([
                ("type", s("check")),
                ("correct", reply.correct.serialize()),
                ("counterexamples", reply.counterexamples.serialize()),
            ]),
            Response::Analyze(reply) => Value::map([
                ("type", s("analyze")),
                (
                    "cycles_per_iteration",
                    reply.cycles_per_iteration.serialize(),
                ),
                ("critical_path", reply.critical_path.serialize()),
                ("port_bound", reply.port_bound.serialize()),
                ("issue_bound", reply.issue_bound.serialize()),
                ("latency_bound", reply.latency_bound.serialize()),
                ("verdict", reply.verdict.serialize()),
                ("lints", reply.lints.serialize()),
            ]),
            Response::Timeout(reply) => Value::map([
                ("type", s("timeout")),
                ("generated", reply.generated.serialize()),
                ("expanded", reply.expanded.serialize()),
                ("elapsed_ms", reply.elapsed_ms.serialize()),
                ("cancelled", reply.cancelled.serialize()),
            ]),
            Response::Overloaded => Value::map([("type", s("overloaded"))]),
            Response::Slept => Value::map([("type", s("slept"))]),
            Response::Metrics { text } => {
                Value::map([("type", s("metrics")), ("text", text.serialize())])
            }
            Response::Stats(reply) => Value::map([
                ("type", s("stats")),
                ("uptime_ms", reply.uptime_ms.serialize()),
                ("queue_depth", reply.queue_depth.serialize()),
                ("inflight", reply.inflight.serialize()),
                ("requests_total", reply.requests_total.serialize()),
                ("shed_total", reply.shed_total.serialize()),
                ("worker_panics", reply.worker_panics.serialize()),
                ("searches_started", reply.searches_started.serialize()),
                (
                    "singleflight_coalesced",
                    reply.singleflight_coalesced.serialize(),
                ),
                ("cache_memory_hits", reply.cache_memory_hits.serialize()),
                ("cache_disk_hits", reply.cache_disk_hits.serialize()),
                ("cache_misses", reply.cache_misses.serialize()),
                ("cache_insertions", reply.cache_insertions.serialize()),
                ("cache_evictions", reply.cache_evictions.serialize()),
                (
                    "cache_verify_rejected",
                    reply.cache_verify_rejected.serialize(),
                ),
                (
                    "cache_verify_skipped",
                    reply.cache_verify_skipped.serialize(),
                ),
                ("portfolio_races", reply.portfolio_races.serialize()),
                ("portfolio_wins", reply.portfolio_wins.serialize()),
                ("portfolio_widened", reply.portfolio_widened.serialize()),
                ("portfolio", reply.portfolio.serialize()),
            ]),
            Response::Progress(reply) => Value::map([
                ("type", s("progress")),
                ("elapsed_millis", reply.elapsed_millis.serialize()),
                ("expanded", reply.expanded.serialize()),
                ("generated", reply.generated.serialize()),
                ("open", reply.open.serialize()),
                ("f_bound", reply.f_bound.serialize()),
                ("viability_pruned", reply.viability_pruned.serialize()),
                ("cut_pruned", reply.cut_pruned.serialize()),
                ("dedup_hits", reply.dedup_hits.serialize()),
                ("dead_write_pruned", reply.dead_write_pruned.serialize()),
                ("value_flow_pruned", reply.value_flow_pruned.serialize()),
                ("spilled_open", reply.spilled_open.serialize()),
                ("spilled_closed", reply.spilled_closed.serialize()),
                ("ddd_dedup_hits", reply.ddd_dedup_hits.serialize()),
                (
                    "resumed_frontier_states",
                    reply.resumed_frontier_states.serialize(),
                ),
                ("resident_bytes", reply.resident_bytes.serialize()),
                ("spilled_bytes", reply.spilled_bytes.serialize()),
                ("finished", reply.finished.serialize()),
                ("outcome", reply.outcome.serialize()),
                ("shards", reply.shards.serialize()),
            ]),
            Response::Error { message } => {
                Value::map([("type", s("error")), ("message", message.serialize())])
            }
        }
    }
}

impl Deserialize for Response {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let tag = String::deserialize(value.required("type")?)?;
        match tag.as_str() {
            "pong" => Ok(Response::Pong),
            "synth" => {
                let source_name = String::deserialize(value.required("source")?)?;
                let source = ReplySource::from_wire_name(&source_name)
                    .ok_or_else(|| Error::new(format!("unknown source `{source_name}`")))?;
                Ok(Response::Synth(SynthReply {
                    program: Option::<String>::deserialize(value.required("program")?)?,
                    found_len: Option::<u32>::deserialize(value.required("found_len")?)?,
                    minimal_certified: bool::deserialize(value.required("minimal_certified")?)?,
                    source,
                    search_millis: u64::deserialize(value.required("search_millis")?)?,
                    distance_table_skipped: bool::deserialize(
                        value.required("distance_table_skipped")?,
                    )?,
                    backend: match value.get("backend") {
                        None => None,
                        Some(v) => Option::<String>::deserialize(v)?,
                    },
                }))
            }
            "check" => Ok(Response::Check(CheckReply {
                correct: bool::deserialize(value.required("correct")?)?,
                counterexamples: u64::deserialize(value.required("counterexamples")?)?,
            })),
            "analyze" => Ok(Response::Analyze(AnalyzeReply {
                cycles_per_iteration: f64::deserialize(value.required("cycles_per_iteration")?)?,
                critical_path: u32::deserialize(value.required("critical_path")?)?,
                port_bound: f64::deserialize(value.required("port_bound")?)?,
                issue_bound: f64::deserialize(value.required("issue_bound")?)?,
                latency_bound: bool::deserialize(value.required("latency_bound")?)?,
                verdict: String::deserialize(value.required("verdict")?)?,
                lints: Vec::<LintReply>::deserialize(value.required("lints")?)?,
            })),
            "timeout" => Ok(Response::Timeout(TimeoutReply {
                generated: u64::deserialize(value.required("generated")?)?,
                expanded: u64::deserialize(value.required("expanded")?)?,
                elapsed_ms: u64::deserialize(value.required("elapsed_ms")?)?,
                cancelled: bool::deserialize(value.required("cancelled")?)?,
            })),
            "overloaded" => Ok(Response::Overloaded),
            "slept" => Ok(Response::Slept),
            "metrics" => Ok(Response::Metrics {
                text: String::deserialize(value.required("text")?)?,
            }),
            "stats" => Ok(Response::Stats(StatsReply {
                uptime_ms: u64::deserialize(value.required("uptime_ms")?)?,
                queue_depth: i64::deserialize(value.required("queue_depth")?)?,
                inflight: i64::deserialize(value.required("inflight")?)?,
                requests_total: u64::deserialize(value.required("requests_total")?)?,
                shed_total: u64::deserialize(value.required("shed_total")?)?,
                worker_panics: u64::deserialize(value.required("worker_panics")?)?,
                searches_started: u64::deserialize(value.required("searches_started")?)?,
                singleflight_coalesced: u64::deserialize(
                    value.required("singleflight_coalesced")?,
                )?,
                cache_memory_hits: u64::deserialize(value.required("cache_memory_hits")?)?,
                cache_disk_hits: u64::deserialize(value.required("cache_disk_hits")?)?,
                cache_misses: u64::deserialize(value.required("cache_misses")?)?,
                cache_insertions: u64::deserialize(value.required("cache_insertions")?)?,
                cache_evictions: u64::deserialize(value.required("cache_evictions")?)?,
                cache_verify_rejected: u64::deserialize(value.required("cache_verify_rejected")?)?,
                cache_verify_skipped: u64::deserialize(value.required("cache_verify_skipped")?)?,
                portfolio_races: match value.get("portfolio_races") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                portfolio_wins: match value.get("portfolio_wins") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                portfolio_widened: match value.get("portfolio_widened") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                portfolio: match value.get("portfolio") {
                    None => Vec::new(),
                    Some(v) => Vec::<PortfolioRowReply>::deserialize(v)?,
                },
            })),
            "progress" => Ok(Response::Progress(ProgressReply {
                elapsed_millis: u64::deserialize(value.required("elapsed_millis")?)?,
                expanded: u64::deserialize(value.required("expanded")?)?,
                generated: u64::deserialize(value.required("generated")?)?,
                open: u64::deserialize(value.required("open")?)?,
                f_bound: Option::<u64>::deserialize(value.required("f_bound")?)?,
                viability_pruned: u64::deserialize(value.required("viability_pruned")?)?,
                cut_pruned: u64::deserialize(value.required("cut_pruned")?)?,
                dedup_hits: u64::deserialize(value.required("dedup_hits")?)?,
                dead_write_pruned: u64::deserialize(value.required("dead_write_pruned")?)?,
                value_flow_pruned: u64::deserialize(value.required("value_flow_pruned")?)?,
                // Spill fields are optional on the wire: an older peer's
                // frames decode with zeros.
                spilled_open: match value.get("spilled_open") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                spilled_closed: match value.get("spilled_closed") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                ddd_dedup_hits: match value.get("ddd_dedup_hits") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                resumed_frontier_states: match value.get("resumed_frontier_states") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                resident_bytes: match value.get("resident_bytes") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                spilled_bytes: match value.get("spilled_bytes") {
                    None => 0,
                    Some(v) => u64::deserialize(v)?,
                },
                finished: bool::deserialize(value.required("finished")?)?,
                outcome: Option::<String>::deserialize(value.required("outcome")?)?,
                shards: Vec::<ShardReply>::deserialize(value.required("shards")?)?,
            })),
            "error" => Ok(Response::Error {
                message: String::deserialize(value.required("message")?)?,
            }),
            other => Err(Error::new(format!("unknown response type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + Deserialize,
    {
        serde_json::from_str(&serde_json::to_string(value).unwrap()).unwrap()
    }

    #[test]
    fn request_round_trips() {
        let requests = [
            Request::Ping,
            Request::Synth {
                query: KernelQuery::best(3, 1, IsaMode::Cmov),
                timeout_ms: Some(500),
                backend: Some("portfolio".into()),
            },
            Request::Synth {
                query: KernelQuery::best(2, 1, IsaMode::MinMax),
                timeout_ms: None,
                backend: None,
            },
            Request::Check {
                machine: Machine::new(2, 1, IsaMode::Cmov),
                program: "mov s1 r2".into(),
            },
            Request::Analyze {
                machine: Machine::new(3, 1, IsaMode::MinMax),
                program: "min r1 r2".into(),
            },
            Request::Sleep { ms: 25 },
            Request::Metrics,
            Request::Stats,
            Request::Watch {
                query: KernelQuery::best(4, 1, IsaMode::Cmov),
                backend: Some("portfolio".into()),
                wait_ms: Some(2000),
            },
            Request::Watch {
                query: KernelQuery::best(3, 1, IsaMode::MinMax),
                backend: None,
                wait_ms: None,
            },
        ];
        for req in &requests {
            assert_eq!(&round_trip(req), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let responses = [
            Response::Pong,
            Response::Synth(SynthReply {
                program: Some("mov s1 r2".into()),
                found_len: Some(1),
                minimal_certified: true,
                source: ReplySource::Cache,
                search_millis: 12,
                distance_table_skipped: false,
                backend: None,
            }),
            Response::Synth(SynthReply {
                program: None,
                found_len: None,
                minimal_certified: false,
                source: ReplySource::Computed,
                search_millis: 3,
                distance_table_skipped: true,
                backend: Some("astar".into()),
            }),
            Response::Check(CheckReply {
                correct: false,
                counterexamples: 2,
            }),
            Response::Analyze(AnalyzeReply {
                cycles_per_iteration: 3.5,
                critical_path: 7,
                port_bound: 1.25,
                issue_bound: 0.75,
                latency_bound: true,
                verdict: "passed-zero-one".into(),
                lints: vec![
                    LintReply {
                        kind: "dead-write".into(),
                        severity: "warning".into(),
                        index: Some(3),
                        message: "value of r1 is never read".into(),
                    },
                    LintReply {
                        kind: "unused-scratch".into(),
                        severity: "info".into(),
                        index: None,
                        message: "scratch register s2 is never used".into(),
                    },
                ],
            }),
            Response::Analyze(AnalyzeReply {
                cycles_per_iteration: 2.0,
                critical_path: 4,
                port_bound: 1.0,
                issue_bound: 0.5,
                latency_bound: false,
                verdict: "certified-network".into(),
                lints: Vec::new(),
            }),
            Response::Timeout(TimeoutReply {
                generated: 1000,
                expanded: 40,
                elapsed_ms: 200,
                cancelled: false,
            }),
            Response::Overloaded,
            Response::Slept,
            Response::Metrics {
                text: "# TYPE sortsynth_requests_total counter\nsortsynth_requests_total 3\n"
                    .into(),
            },
            Response::Stats(StatsReply {
                uptime_ms: 1234,
                queue_depth: 2,
                inflight: 1,
                requests_total: 10,
                shed_total: 3,
                worker_panics: 0,
                searches_started: 4,
                singleflight_coalesced: 2,
                cache_memory_hits: 5,
                cache_disk_hits: 1,
                cache_misses: 4,
                cache_insertions: 4,
                cache_evictions: 0,
                cache_verify_rejected: 0,
                cache_verify_skipped: 0,
                portfolio_races: 3,
                portfolio_wins: 2,
                portfolio_widened: 1,
                portfolio: vec![PortfolioRowReply {
                    shape: "3/1/cmov".into(),
                    backend: "astar".into(),
                    wins: 2,
                    losses: 0,
                    cancelled: 1,
                    total_millis: 40,
                }],
            }),
            Response::Progress(ProgressReply {
                elapsed_millis: 750,
                expanded: 4096,
                generated: 90_000,
                open: 1200,
                f_bound: Some(9),
                viability_pruned: 60_000,
                cut_pruned: 10_000,
                dedup_hits: 14_000,
                dead_write_pruned: 500,
                value_flow_pruned: 300,
                spilled_open: 2000,
                spilled_closed: 1500,
                ddd_dedup_hits: 77,
                resumed_frontier_states: 12,
                resident_bytes: 3 << 20,
                spilled_bytes: 5 << 20,
                finished: false,
                outcome: None,
                shards: vec![
                    ShardReply {
                        interned_states: 3000,
                        arena_bytes: 1 << 20,
                        open_depth: 700,
                    },
                    ShardReply {
                        interned_states: 2800,
                        arena_bytes: 900_000,
                        open_depth: 500,
                    },
                ],
            }),
            Response::Progress(ProgressReply {
                finished: true,
                outcome: Some("Solved".into()),
                ..ProgressReply::default()
            }),
            Response::Error {
                message: "bad".into(),
            },
        ];
        for resp in &responses {
            assert_eq!(&round_trip(resp), resp);
        }
    }

    #[test]
    fn legacy_frames_without_new_fields_still_parse() {
        // Pre-portfolio peers omit `backend` and the portfolio stats
        // fields entirely; both sides must keep accepting those frames.
        let req: Request = serde_json::from_str(
            r#"{"op":"synth","query":{"n":2,"scratch":1,"mode":"cmov","max_len":null,
                "optimal_instrs_only":true,"budget_viability":true,"cut":null}}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::Synth {
                timeout_ms: None,
                backend: None,
                ..
            }
        ));
        let resp: Response = serde_json::from_str(
            r#"{"type":"synth","program":null,"found_len":null,"minimal_certified":false,
                "source":"computed","search_millis":1,"distance_table_skipped":false}"#,
        )
        .unwrap();
        assert!(matches!(
            resp,
            Response::Synth(SynthReply { backend: None, .. })
        ));
    }

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let huge = (MAX_FRAME + 1).to_be_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
