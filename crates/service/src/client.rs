//! A blocking client for the synthesis service.

use std::io::{self, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sortsynth_cache::KernelQuery;
use sortsynth_isa::Machine;

use crate::proto::{read_message, write_message, Request, Response};

/// One connection to a synthesis server. Requests are pipelined strictly:
/// each call writes one request frame and blocks for its response frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Caps how long a single response is awaited (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and awaits its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_message(&mut self.stream, request)?;
        read_message::<Response>(&mut self.stream)?
            .ok_or_else(|| io::Error::new(ErrorKind::UnexpectedEof, "server closed connection"))
    }

    /// Health check.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.request(&Request::Ping)
    }

    /// Synthesizes (or fetches) the kernel for `query` on the server's
    /// default route.
    pub fn synth(&mut self, query: KernelQuery, timeout_ms: Option<u64>) -> io::Result<Response> {
        self.synth_with(query, timeout_ms, None)
    }

    /// Synthesizes with an explicit route: a backend name (`astar`,
    /// `cegis`, …), `portfolio` to race, or `None` for the server default.
    pub fn synth_with(
        &mut self,
        query: KernelQuery,
        timeout_ms: Option<u64>,
        backend: Option<String>,
    ) -> io::Result<Response> {
        self.request(&Request::Synth {
            query,
            timeout_ms,
            backend,
        })
    }

    /// Checks a program's correctness.
    pub fn check(&mut self, machine: Machine, program: String) -> io::Result<Response> {
        self.request(&Request::Check { machine, program })
    }

    /// Requests static throughput analysis of a program.
    pub fn analyze(&mut self, machine: Machine, program: String) -> io::Result<Response> {
        self.request(&Request::Analyze { machine, program })
    }

    /// Fetches the server's Prometheus metrics exposition.
    pub fn metrics(&mut self) -> io::Result<Response> {
        self.request(&Request::Metrics)
    }

    /// Fetches the server's live counters and gauges.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request(&Request::Stats)
    }

    /// Attaches to the in-flight synthesis of `query` (admitted under
    /// `backend`, `None` for the default route). The server streams
    /// [`Response::Progress`] frames; read them with [`Client::next_frame`]
    /// until one has `finished = true` (or a non-progress response ends the
    /// stream), after which the connection is back in request/response.
    pub fn begin_watch(
        &mut self,
        query: KernelQuery,
        backend: Option<String>,
        wait_ms: Option<u64>,
    ) -> io::Result<()> {
        write_message(
            &mut self.stream,
            &Request::Watch {
                query,
                backend,
                wait_ms,
            },
        )
    }

    /// Reads the next frame of an in-progress watch stream.
    pub fn next_frame(&mut self) -> io::Result<Response> {
        read_message::<Response>(&mut self.stream)?
            .ok_or_else(|| io::Error::new(ErrorKind::UnexpectedEof, "server closed connection"))
    }

    /// Convenience wrapper: attaches to `query`'s flight and collects every
    /// streamed [`crate::proto::ProgressReply`] until the stream ends.
    /// Errors with the server's message if there is no matching flight.
    pub fn watch(
        &mut self,
        query: KernelQuery,
        backend: Option<String>,
        wait_ms: Option<u64>,
    ) -> io::Result<Vec<crate::proto::ProgressReply>> {
        self.begin_watch(query, backend, wait_ms)?;
        let mut frames = Vec::new();
        loop {
            match self.next_frame()? {
                Response::Progress(frame) => {
                    let finished = frame.finished;
                    frames.push(frame);
                    if finished {
                        return Ok(frames);
                    }
                }
                Response::Error { message } => return Err(io::Error::other(message)),
                other => {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("unexpected watch response: {other:?}"),
                    ))
                }
            }
        }
    }
}
