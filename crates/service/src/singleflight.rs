//! Single-flight deduplication: concurrent identical requests coalesce onto
//! one computation.
//!
//! The first caller to [`SingleFlight::join`] a key becomes the **leader**
//! and receives a [`LeaderToken`]; everyone else joining before the leader
//! [completes](LeaderToken::complete) becomes a **follower** and blocks
//! until the leader's result is published, then receives a clone of it.
//!
//! The invariant the synthesis server relies on: the leader publishes its
//! result to the kernel cache *before* completing the flight, so a request
//! for a given key either hits the cache, joins the flight, or leads it —
//! with a cold cache, exactly one search runs no matter how many identical
//! requests race.
//!
//! If a leader unwinds without completing (a panic in the computation), the
//! token's `Drop` publishes `None` so followers wake with an error instead
//! of hanging.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct Flight<T> {
    /// `None` = still flying; `Some(None)` = leader abandoned;
    /// `Some(Some(t))` = completed.
    result: Mutex<Option<Option<T>>>,
    cv: Condvar,
}

/// A per-key coalescing map. `T` is the published result type.
pub struct SingleFlight<T> {
    flights: Mutex<HashMap<u64, Arc<Flight<T>>>>,
}

/// Proof of leadership for one key. Complete it with the result; dropping
/// it without completing publishes `None` (abandonment).
pub struct LeaderToken<'a, T: Clone> {
    owner: &'a SingleFlight<T>,
    key: u64,
    completed: bool,
}

/// The outcome of joining a key.
pub enum Role<'a, T: Clone> {
    /// This caller runs the computation.
    Leader(LeaderToken<'a, T>),
    /// Another caller ran it; here is its result (`None` if it abandoned).
    Follower(Option<T>),
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<T: Clone> SingleFlight<T> {
    /// Creates an empty coalescing map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Joins the flight for `key`, becoming leader if none is active, or
    /// blocking as a follower until the active leader finishes.
    pub fn join(&self, key: u64) -> Role<'_, T> {
        let flight = {
            let mut flights = self.flights.lock();
            match flights.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    flights.insert(
                        key,
                        Arc::new(Flight {
                            result: Mutex::new(None),
                            cv: Condvar::new(),
                        }),
                    );
                    return Role::Leader(LeaderToken {
                        owner: self,
                        key,
                        completed: false,
                    });
                }
            }
        };
        let mut result = flight.result.lock();
        while result.is_none() {
            flight.cv.wait(&mut result);
        }
        Role::Follower(result.clone().expect("checked Some above"))
    }

    /// Number of in-flight keys (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().len()
    }

    fn finish(&self, key: u64, result: Option<T>) {
        let flight = self.flights.lock().remove(&key);
        if let Some(flight) = flight {
            *flight.result.lock() = Some(result);
            flight.cv.notify_all();
        }
    }
}

impl<T: Clone> LeaderToken<'_, T> {
    /// Publishes the result and releases the key. Followers wake with a
    /// clone; subsequent joiners start a fresh flight.
    pub fn complete(mut self, result: T) {
        self.completed = true;
        self.owner.finish(self.key, Some(result));
    }
}

impl<T: Clone> Drop for LeaderToken<'_, T> {
    fn drop(&mut self) {
        if !self.completed {
            self.owner.finish(self.key, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_leader_many_followers() {
        let sf = SingleFlight::<u64>::new();
        let computations = AtomicU64::new(0);
        let agreed = AtomicU64::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| match sf.join(42) {
                    Role::Leader(token) => {
                        computations.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        token.complete(1234);
                    }
                    Role::Follower(result) => {
                        assert_eq!(result, Some(1234));
                        agreed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(agreed.load(Ordering::SeqCst), 7);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let sf = SingleFlight::<u64>::new();
        let (Role::Leader(a), Role::Leader(b)) = (sf.join(1), sf.join(2)) else {
            panic!("both keys should lead");
        };
        assert_eq!(sf.in_flight(), 2);
        a.complete(10);
        b.complete(20);
        assert_eq!(sf.in_flight(), 0);
        // Keys are reusable after completion.
        assert!(matches!(sf.join(1), Role::Leader(_)));
    }

    #[test]
    fn abandoned_leader_wakes_followers_with_none() {
        let sf = SingleFlight::<u64>::new();
        crossbeam::thread::scope(|scope| {
            let Role::Leader(token) = sf.join(7) else {
                panic!("first joiner leads");
            };
            let follower = scope.spawn(|_| match sf.join(7) {
                Role::Follower(result) => result,
                // The join raced past the abandonment: a fresh flight, which
                // we complete normally.
                Role::Leader(token) => {
                    token.complete(99);
                    Some(99)
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(token); // leader dies without completing
            let got = follower.join().unwrap();
            assert!(got.is_none() || got == Some(99));
        })
        .unwrap();
        assert_eq!(sf.in_flight(), 0);
    }
}
