//! Live attach: a registry of in-flight searches that fans each flight's
//! throttled progress frames out to any number of watchers.
//!
//! The hub is keyed by the same single-flight key the synth path coalesces
//! on, so `watch` observes exactly the one search N identical requests
//! share — attaching adds a channel, never load. A watcher that arrives
//! mid-flight is primed with the most recent frame immediately, then
//! streams live ones; the stream always terminates with a `finished`
//! frame — synthesized as `Abandoned` if the search panicked before
//! delivering its own final snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::proto::ProgressReply;

/// How often [`WatchHub::attach`] re-checks for a flight while waiting for
/// one to start.
const ATTACH_POLL: Duration = Duration::from_millis(20);

/// One registered flight: its subscribers and the last frame published.
struct FlightChannel {
    /// Distinguishes this registration from a later one under the same key,
    /// so a guard dropped late never tears down its successor.
    id: u64,
    subs: Vec<Sender<ProgressReply>>,
    last: Option<ProgressReply>,
}

/// Fan-out registry of in-flight searches.
#[derive(Default)]
pub struct WatchHub {
    flights: Mutex<HashMap<u64, FlightChannel>>,
    next_id: AtomicU64,
}

/// Registration handle held by the search leader for the duration of its
/// run. Dropping it (normally or by unwinding) ends the stream: if the
/// search never published a `finished` frame, subscribers receive a
/// synthetic `Abandoned` one so no watcher hangs.
pub struct WatchGuard<'a> {
    hub: &'a WatchHub,
    key: u64,
    id: u64,
}

impl WatchHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        WatchHub::default()
    }

    /// Registers a flight under `key` for the leader about to search.
    pub fn begin(&self, key: u64) -> WatchGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        // A stale channel under the same key (leader panicked between
        // `publish(finished)` and guard drop is impossible, but a crashed
        // guard-less path isn't) is simply replaced; its senders drop.
        flights.insert(
            key,
            FlightChannel {
                id,
                subs: Vec::new(),
                last: None,
            },
        );
        WatchGuard { hub: self, key, id }
    }

    /// Publishes one frame to every subscriber of `key`. A `finished` frame
    /// ends the stream and removes the flight. Unknown keys are ignored
    /// (the flight already ended).
    pub fn publish(&self, key: u64, frame: &ProgressReply) {
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        let Some(channel) = flights.get_mut(&key) else {
            return;
        };
        channel.subs.retain(|sub| sub.send(frame.clone()).is_ok());
        channel.last = Some(frame.clone());
        if frame.finished {
            flights.remove(&key);
        }
    }

    /// Attaches to the flight under `key`, waiting up to `wait` for one to
    /// start. Returns the live receiver plus the most recent frame (if the
    /// flight has already published one) for immediate delivery; `None` if
    /// no flight appeared within the window.
    pub fn attach(
        &self,
        key: u64,
        wait: Duration,
    ) -> Option<(Receiver<ProgressReply>, Option<ProgressReply>)> {
        let deadline = Instant::now() + wait;
        loop {
            {
                let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(channel) = flights.get_mut(&key) {
                    let (tx, rx) = unbounded();
                    channel.subs.push(tx);
                    return Some((rx, channel.last.clone()));
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(ATTACH_POLL);
        }
    }

    /// Number of currently registered flights (tests).
    pub fn active(&self) -> usize {
        self.flights.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Drop for WatchGuard<'_> {
    fn drop(&mut self) {
        let mut flights = self.hub.flights.lock().unwrap_or_else(|e| e.into_inner());
        let ours = flights.get(&self.key).is_some_and(|c| c.id == self.id);
        if !ours {
            return; // the finished frame (or a successor flight) cleaned up
        }
        let channel = flights.remove(&self.key).expect("checked above");
        if channel.last.as_ref().is_some_and(|f| f.finished) {
            return;
        }
        // The search unwound without a final snapshot: close the stream
        // explicitly so watchers terminate instead of hanging.
        let mut frame = channel.last.unwrap_or_default();
        frame.finished = true;
        frame.outcome = Some("Abandoned".to_string());
        for sub in &channel.subs {
            let _ = sub.send(frame.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(expanded: u64, finished: bool) -> ProgressReply {
        ProgressReply {
            expanded,
            finished,
            ..ProgressReply::default()
        }
    }

    #[test]
    fn watchers_see_live_frames_and_the_finished_frame_ends_the_flight() {
        let hub = WatchHub::new();
        let guard = hub.begin(7);
        hub.publish(7, &frame(10, false));
        let (rx, last) = hub.attach(7, Duration::ZERO).expect("flight is live");
        assert_eq!(last.unwrap().expanded, 10, "primed with the latest frame");
        hub.publish(7, &frame(20, false));
        hub.publish(7, &frame(30, true));
        assert_eq!(rx.recv().unwrap().expanded, 20);
        let fin = rx.recv().unwrap();
        assert_eq!(fin.expanded, 30);
        assert!(fin.finished);
        assert_eq!(hub.active(), 0, "finished frame removed the flight");
        drop(guard); // late drop must not disturb anything
        assert!(hub.attach(7, Duration::ZERO).is_none());
    }

    #[test]
    fn multiple_watchers_all_receive_each_frame() {
        let hub = WatchHub::new();
        let _guard = hub.begin(1);
        let (a, _) = hub.attach(1, Duration::ZERO).unwrap();
        let (b, _) = hub.attach(1, Duration::ZERO).unwrap();
        hub.publish(1, &frame(5, false));
        assert_eq!(a.recv().unwrap().expanded, 5);
        assert_eq!(b.recv().unwrap().expanded, 5);
    }

    #[test]
    fn dropped_guard_synthesizes_an_abandoned_final_frame() {
        let hub = WatchHub::new();
        let guard = hub.begin(3);
        hub.publish(3, &frame(42, false));
        let (rx, _) = hub.attach(3, Duration::ZERO).unwrap();
        drop(guard); // search panicked: no finished frame was published
        let fin = rx.recv().unwrap();
        assert!(fin.finished);
        assert_eq!(fin.outcome.as_deref(), Some("Abandoned"));
        assert_eq!(fin.expanded, 42, "carries the last known counters");
        assert_eq!(hub.active(), 0);
    }

    #[test]
    fn attach_waits_for_a_flight_to_start() {
        use std::sync::Arc;
        let hub = Arc::new(WatchHub::new());
        let h = Arc::clone(&hub);
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let _guard = h.begin(9);
            std::thread::sleep(Duration::from_millis(60));
            h.publish(9, &frame(1, true));
        });
        let (rx, last) = hub
            .attach(9, Duration::from_secs(5))
            .expect("flight appears within the window");
        assert!(last.is_none());
        assert!(rx.recv().unwrap().finished);
        publisher.join().unwrap();
        assert!(
            hub.attach(1234, Duration::from_millis(30)).is_none(),
            "an absent flight times out"
        );
    }

    #[test]
    fn a_new_flight_under_the_same_key_survives_the_old_guard() {
        let hub = WatchHub::new();
        let old = hub.begin(5);
        let _new = hub.begin(5); // replaces the registration
        drop(old); // must not tear down the new flight
        assert_eq!(hub.active(), 1);
        assert!(hub.attach(5, Duration::ZERO).is_some());
    }
}
