//! The kernel-synthesis service: a concurrent TCP server (and matching
//! client) in front of the enumerative search engine.
//!
//! Synthesizing a sorting kernel is seconds-to-hours of search for a
//! few-dozen-instruction answer, so the serving problem is dominated by
//! three concerns, each owned by one module:
//!
//! * [`proto`] — a length-prefixed JSON wire protocol for `synth` / `check`
//!   / `analyze` requests;
//! * [`singleflight`] — concurrent identical queries coalesce onto a single
//!   search; combined with the persistent [`sortsynth_cache::KernelCache`],
//!   a cold query is searched exactly once no matter how many clients race;
//! * [`server`] — a worker pool behind a *bounded* admission queue
//!   (overload is shed explicitly, not queued indefinitely), with
//!   per-request deadlines that propagate into the engine as a cooperative
//!   [`sortsynth_search::SearchBudget`] — an expired request returns partial
//!   search diagnostics instead of hanging a worker;
//! * [`watch`] — live attach: the `watch` verb streams an in-flight
//!   search's throttled progress frames to any number of observers, riding
//!   the same single-flight key the synth path coalesces on.
//!
//! # Quick start
//!
//! ```no_run
//! use sortsynth_cache::KernelQuery;
//! use sortsynth_isa::IsaMode;
//! use sortsynth_service::{Client, Server, ServiceConfig};
//!
//! let server = Server::bind(ServiceConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServiceConfig::default()
//! })?;
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(handle.addr())?;
//! let response = client.synth(KernelQuery::best(3, 1, IsaMode::Cmov), Some(5_000))?;
//! println!("{response:?}");
//! handle.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod proto;
pub mod server;
pub mod singleflight;
pub mod watch;

pub use client::Client;
pub use proto::{
    AnalyzeReply, CheckReply, LintReply, ProgressReply, ReplySource, Request, Response, ShardReply,
    StatsReply, SynthReply, TimeoutReply,
};
pub use server::{Server, ServerHandle, ServiceConfig};
pub use singleflight::{LeaderToken, Role, SingleFlight};
pub use watch::WatchHub;
