//! The synthesis server: acceptor, bounded admission queue, worker pool,
//! cache + single-flight synth pipeline, and deadline propagation.
//!
//! # Architecture
//!
//! ```text
//! acceptor ──> connection thread (one per client)
//!                │  read frame, parse request
//!                │  try_send ──────────────┐ bounded queue (admission)
//!                │    └─ Full → Overloaded │
//!                ▼                         ▼
//!              write response  <──  worker pool (N threads)
//!                                     │ synth: cache → single-flight → search
//!                                     │ deadline → SearchBudget → Timeout reply
//!                                     └ check/analyze/sleep: direct
//! ```
//!
//! Admission control is a `try_send` into a bounded crossbeam channel: when
//! the queue is full the connection thread answers [`Response::Overloaded`]
//! immediately instead of letting latency grow without bound. Deadlines are
//! stamped at admission, so time spent queued counts against the request —
//! a request that waits out its deadline in the queue is answered with
//! [`Response::Timeout`] without ever reaching the engine.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use sortsynth_cache::{fnv1a, CacheEntry, CutSpec, KernelCache, KernelQuery};
use sortsynth_isa::{analyze, Machine, ThroughputModel};
use sortsynth_obs::FlightRecorder;
use sortsynth_obs::{names, FieldValue, Span};
use sortsynth_portfolio::{
    backend_for, BackendKind, BackendStatus, DispatchPolicy, Portfolio, POLICY_FILE,
};
use sortsynth_search::{synthesize, Cut, Outcome, ProgressHook, SearchBudget, SynthesisConfig};

use crate::proto::{
    read_message, write_message, AnalyzeReply, CheckReply, LintReply, PortfolioRowReply,
    ProgressReply, ReplySource, Request, Response, StatsReply, SynthReply, TimeoutReply,
};
use crate::singleflight::{Role, SingleFlight};
use crate::watch::WatchHub;

/// Upper bound honoured for `Request::Sleep` (keeps the diagnostic op from
/// wedging a worker).
const MAX_SLEEP_MS: u64 = 10_000;

/// How long a `watch` request waits for a matching flight to start when the
/// client doesn't say.
const DEFAULT_WATCH_WAIT_MS: u64 = 2_000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission-queue depth; requests beyond it are shed with
    /// [`Response::Overloaded`].
    pub queue_depth: usize,
    /// Durable cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Capacity of the in-memory cache front.
    pub cache_capacity: usize,
    /// Deadline applied to synth requests that don't carry their own.
    pub default_timeout: Option<Duration>,
    /// Search-engine threads per synth request (`1` = sequential engine,
    /// `0` = all available cores). Interplay with admission control: up to
    /// `workers` synth jobs execute at once, each using up to
    /// `search_threads` engine threads, so the process can run
    /// `workers × search_threads` search threads at peak. Size the two
    /// knobs together — e.g. on an 8-core box prefer `workers = 2,
    /// search_threads = 4` for latency, or `workers = 8,
    /// search_threads = 1` for throughput. The thread count never changes
    /// an answer (only how fast it arrives), so it is deliberately not part
    /// of the cache fingerprint.
    pub search_threads: usize,
    /// When set, a background thread logs a one-line load summary (queue
    /// depth, inflight, shed, cache hit counts) at this interval. Enabled by
    /// `sortsynth serve --metrics`.
    pub self_report: Option<Duration>,
    /// Default synthesis route for synth requests that don't name a
    /// backend. `None` keeps the classic engine path; `Some(names)` races
    /// that backend set through the portfolio executor (an empty list means
    /// every known backend). Requests carrying an explicit `backend`
    /// override this. Enabled by `sortsynth serve --portfolio`.
    pub portfolio: Option<Vec<String>>,
    /// When set, every engine-route search leaves a flight recording
    /// `search-<fingerprint>-<seq>.ssfr` in this directory (bounded by the
    /// recorder's segment rotation), readable post-mortem with
    /// `sortsynth inspect`. Enabled by `sortsynth serve --record-dir`.
    pub record_dir: Option<PathBuf>,
    /// Memory budget applied to every engine-route search. When the
    /// resident estimate crosses it, cold open-list buckets and closed-set
    /// segments spill to disk instead of growing the heap (sequential
    /// engine only — the spill tier is bypassed when `search_threads != 1`).
    /// Enabled by `sortsynth serve --search-mem-limit`.
    pub search_mem_limit: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_dir: None,
            cache_capacity: 1024,
            default_timeout: Some(Duration::from_secs(30)),
            search_threads: 1,
            self_report: None,
            portfolio: None,
            record_dir: None,
            search_mem_limit: None,
        }
    }
}

/// One admitted unit of work.
struct Job {
    request: Request,
    /// Deadline stamped at admission (queue wait counts).
    deadline: Option<Instant>,
    reply: Sender<Response>,
    /// The connection's per-request span, so worker-side child spans keep
    /// their parent link across the queue boundary.
    span_id: u64,
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    cache: KernelCache,
    flights: SingleFlight<Response>,
    jobs: Sender<Job>,
    searches_started: AtomicU64,
    shutdown: AtomicBool,
    default_timeout: Option<Duration>,
    search_threads: usize,
    started: Instant,
    /// Per-server live gauges/counters backing [`Request::Stats`]. The
    /// process-wide metrics registry is updated at the same sites, but these
    /// stay correct even when several servers share one process (tests).
    requests_total: AtomicU64,
    shed_total: AtomicU64,
    worker_panics: AtomicU64,
    coalesced: AtomicU64,
    queue_depth: AtomicI64,
    inflight: AtomicI64,
    /// Default portfolio roster for unrouted synth requests (`None` = the
    /// classic engine path).
    portfolio_route: Option<Vec<BackendKind>>,
    /// The learned dispatch table, shared by every race and persisted to
    /// `policy_path` after each update.
    policy: Mutex<DispatchPolicy>,
    policy_path: Option<PathBuf>,
    portfolio_races: AtomicU64,
    portfolio_wins: AtomicU64,
    portfolio_widened: AtomicU64,
    /// Live-attach fan-out registry, keyed by single-flight key. `Arc` so
    /// the search progress hook (which must be `'static`) can publish into
    /// it from worker threads.
    watch: Arc<WatchHub>,
    /// Flight-recording directory (`ServiceConfig::record_dir`).
    record_dir: Option<PathBuf>,
    /// Distinguishes recordings of repeated identical queries.
    recording_seq: AtomicU64,
    /// Memory budget for engine-route searches
    /// (`ServiceConfig::search_mem_limit`).
    search_mem_limit: Option<u64>,
    /// Arena sizing table, persisted next to the durable cache so repeated
    /// shapes pre-size their arenas; memory-only servers size from scratch.
    sizing_path: Option<PathBuf>,
}

impl Shared {
    /// Builds the [`Request::Stats`] snapshot.
    fn stats_reply(&self) -> StatsReply {
        let cache = self.cache.stats();
        StatsReply {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            searches_started: self.searches_started.load(Ordering::SeqCst),
            singleflight_coalesced: self.coalesced.load(Ordering::Relaxed),
            cache_memory_hits: cache.memory_hits,
            cache_disk_hits: cache.disk_hits,
            cache_misses: cache.misses,
            cache_insertions: cache.insertions,
            cache_evictions: cache.evictions,
            cache_verify_rejected: cache.verify_rejected,
            cache_verify_skipped: cache.verify_skipped + cache.load.verify_skipped,
            portfolio_races: self.portfolio_races.load(Ordering::Relaxed),
            portfolio_wins: self.portfolio_wins.load(Ordering::Relaxed),
            portfolio_widened: self.portfolio_widened.load(Ordering::Relaxed),
            portfolio: self
                .policy
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .rows()
                .into_iter()
                .map(|row| PortfolioRowReply {
                    shape: row.shape,
                    backend: row.backend,
                    wins: row.wins,
                    losses: row.losses,
                    cancelled: row.cancelled,
                    total_millis: row.total_millis,
                })
                .collect(),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Control handle for a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds the listener, opens the cache, and starts the worker pool.
    /// The server does not accept connections until [`Server::run`] (or
    /// [`Server::spawn`]).
    pub fn bind(config: ServiceConfig) -> io::Result<Server> {
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable addr")
            })?)?;
        let addr = listener.local_addr()?;
        let cache = match &config.cache_dir {
            Some(dir) => KernelCache::open(dir, config.cache_capacity)?,
            None => KernelCache::in_memory(config.cache_capacity),
        };
        let portfolio_route = match &config.portfolio {
            None => None,
            Some(names) if names.is_empty() => Some(BackendKind::ALL.to_vec()),
            Some(names) => {
                let mut kinds = Vec::new();
                for name in names {
                    let kind = BackendKind::parse(name).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("unknown portfolio backend `{name}`"),
                        )
                    })?;
                    if !kinds.contains(&kind) {
                        kinds.push(kind);
                    }
                }
                Some(kinds)
            }
        };
        // The dispatch table lives next to the durable cache so a restarted
        // server keeps its routing knowledge; memory-only servers start cold.
        let policy_path = config.cache_dir.as_ref().map(|dir| dir.join(POLICY_FILE));
        let policy = match &policy_path {
            Some(path) => DispatchPolicy::load(path),
            None => DispatchPolicy::new(),
        };
        // Pre-register every metric family so the first `metrics` reply is
        // complete even before any request has touched a counter.
        names::register_well_known();
        if let Some(dir) = &config.record_dir {
            std::fs::create_dir_all(dir)?;
        }
        let (jobs_tx, jobs_rx) = channel::bounded::<Job>(config.queue_depth.max(1));
        let shared = Arc::new(Shared {
            cache,
            flights: SingleFlight::new(),
            jobs: jobs_tx,
            searches_started: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            default_timeout: config.default_timeout,
            search_threads: config.search_threads,
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            inflight: AtomicI64::new(0),
            portfolio_route,
            policy: Mutex::new(policy),
            policy_path,
            portfolio_races: AtomicU64::new(0),
            portfolio_wins: AtomicU64::new(0),
            portfolio_widened: AtomicU64::new(0),
            watch: Arc::new(WatchHub::new()),
            record_dir: config.record_dir.clone(),
            recording_seq: AtomicU64::new(0),
            search_mem_limit: config.search_mem_limit,
            sizing_path: config.cache_dir.as_ref().map(|dir| dir.join("sizing.txt")),
        });
        let mut workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|i| {
                let rx = jobs_rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sortsynth-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("spawn worker")
            })
            .collect();
        if let Some(interval) = config.self_report {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name("sortsynth-reporter".to_string())
                    .spawn(move || self_report_loop(shared, interval))
                    .expect("spawn reporter"),
            );
        }
        Ok(Server {
            listener,
            addr,
            shared,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts connections until shut down. Blocks the calling thread.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            shared,
            workers,
            ..
        } = self;
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("sortsynth-conn".to_string())
                        .spawn(move || handle_connection(stream, shared))
                        .expect("spawn connection thread");
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread and returns a control
    /// handle.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let acceptor = std::thread::Builder::new()
            .name("sortsynth-acceptor".to_string())
            .spawn(move || self.run())
            .expect("spawn acceptor");
        ServerHandle {
            addr,
            shared,
            acceptor,
        }
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of synthesis searches actually started (cache hits and
    /// coalesced requests excluded) — the observable the single-flight
    /// tests assert on.
    pub fn searches_started(&self) -> u64 {
        self.shared.searches_started.load(Ordering::SeqCst)
    }

    /// Cache statistics snapshot.
    pub fn cache_stats(&self) -> sortsynth_cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Stops accepting, drains the workers, and joins the acceptor.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.acceptor.join().expect("acceptor panicked")
    }
}

fn worker_loop(jobs: Receiver<Job>, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match jobs.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => {
                shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                sortsynth_obs::registry()
                    .gauge(
                        names::QUEUE_DEPTH,
                        "Jobs currently waiting in the admission queue.",
                    )
                    .dec();
                shared.inflight.fetch_add(1, Ordering::Relaxed);
                let inflight = sortsynth_obs::registry().gauge(
                    names::INFLIGHT_REQUESTS,
                    "Jobs currently executing on workers.",
                );
                inflight.inc();
                let execute_span = Span::child_of(job.span_id, "execute");
                // A panicking handler (engine bug, pathological query) must
                // not take the worker down with it: answer with an error and
                // move on to the next request. An unwinding search leader
                // drops its flight token, which releases any followers.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&shared, &job)
                }))
                .unwrap_or_else(|payload| {
                    shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                    sortsynth_obs::registry()
                        .counter(
                            names::WORKER_PANICS_TOTAL,
                            "Worker panics caught and converted to error replies.",
                        )
                        .inc();
                    Response::Error {
                        message: format!("request handler panicked: {}", panic_message(&payload)),
                    }
                });
                drop(execute_span);
                shared.inflight.fetch_sub(1, Ordering::Relaxed);
                inflight.dec();
                // The connection may have gone away; that's its problem.
                let _ = job.reply.send(response);
            }
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Wire tag of a request, for span fields.
fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Synth { .. } => "synth",
        Request::Check { .. } => "check",
        Request::Analyze { .. } => "analyze",
        Request::Sleep { .. } => "sleep",
        Request::Metrics => "metrics",
        Request::Stats => "stats",
        Request::Watch { .. } => "watch",
    }
}

/// Wire tag of a response, for span fields.
fn response_name(response: &Response) -> &'static str {
    match response {
        Response::Pong => "pong",
        Response::Synth(_) => "synth",
        Response::Check(_) => "check",
        Response::Analyze(_) => "analyze",
        Response::Timeout(_) => "timeout",
        Response::Overloaded => "overloaded",
        Response::Slept => "slept",
        Response::Metrics { .. } => "metrics",
        Response::Stats(_) => "stats",
        Response::Progress(_) => "progress",
        Response::Error { .. } => "error",
    }
}

/// Periodic self-reporting: one summary log line per interval, until
/// shutdown. The line carries the same gauges as [`Request::Stats`].
fn self_report_loop(shared: Arc<Shared>, interval: Duration) {
    let interval = interval.max(Duration::from_millis(100));
    let mut last = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
        if last.elapsed() < interval {
            continue;
        }
        last = Instant::now();
        let stats = shared.stats_reply();
        sortsynth_obs::info!(
            "# sortsynth stats uptime_ms={} queue={} inflight={} requests={} shed={} panics={} searches={} coalesced={} cache_hits={} cache_misses={}",
            stats.uptime_ms,
            stats.queue_depth,
            stats.inflight,
            stats.requests_total,
            stats.shed_total,
            stats.worker_panics,
            stats.searches_started,
            stats.singleflight_coalesced,
            stats.cache_memory_hits + stats.cache_disk_hits,
            stats.cache_misses,
        );
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let request = match read_message::<Request>(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean close
            Err(e) => {
                let _ = write_message(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        // Observability verbs are answered inline, bypassing the admission
        // queue: a scrape must keep working precisely when the server is
        // overloaded and sheds everything else.
        match &request {
            Request::Metrics => {
                let response = Response::Metrics {
                    text: sortsynth_obs::registry().render_prometheus(),
                };
                if write_message(&mut writer, &response).is_err() {
                    return;
                }
                continue;
            }
            Request::Stats => {
                let response = Response::Stats(shared.stats_reply());
                if write_message(&mut writer, &response).is_err() {
                    return;
                }
                continue;
            }
            Request::Watch {
                query,
                backend,
                wait_ms,
            } => {
                if !handle_watch(&shared, &mut writer, query, backend.as_deref(), *wait_ms) {
                    return;
                }
                continue;
            }
            _ => {}
        }
        let span = Span::root_with("request", &[("op", FieldValue::Static(op_name(&request)))]);
        let accepted = Instant::now();
        let deadline = admission_deadline(&shared, &request);
        let (reply_tx, reply_rx) = channel::bounded::<Response>(1);
        let job = Job {
            request,
            deadline,
            reply: reply_tx,
            span_id: span.id(),
        };
        let response = match shared.jobs.try_send(job) {
            Ok(()) => {
                shared.requests_total.fetch_add(1, Ordering::Relaxed);
                shared.queue_depth.fetch_add(1, Ordering::Relaxed);
                let registry = sortsynth_obs::registry();
                registry
                    .counter(
                        names::REQUESTS_TOTAL,
                        "Requests accepted into the admission queue.",
                    )
                    .inc();
                registry
                    .gauge(
                        names::QUEUE_DEPTH,
                        "Jobs currently waiting in the admission queue.",
                    )
                    .inc();
                // Admission is implied by the request span itself; only the
                // shed path gets an explicit marker event.
                reply_rx.recv().unwrap_or_else(|_| Response::Error {
                    message: "worker dropped the request".to_string(),
                })
            }
            Err(TrySendError::Full(_)) => {
                shared.shed_total.fetch_add(1, Ordering::Relaxed);
                sortsynth_obs::registry()
                    .counter(
                        names::REQUESTS_SHED_TOTAL,
                        "Requests shed because the admission queue was full.",
                    )
                    .inc();
                span.event("shed", &[]);
                Response::Overloaded
            }
            Err(TrySendError::Disconnected(_)) => Response::Error {
                message: "server shutting down".to_string(),
            },
        };
        names::request_seconds().observe_duration(accepted.elapsed());
        span.event(
            "reply",
            &[("type", FieldValue::Static(response_name(&response)))],
        );
        drop(span);
        if write_message(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Streams an in-flight search's progress frames to one watcher. Runs on
/// the connection thread (like `metrics`/`stats`) so attaching works under
/// overload. Returns `false` when the connection is gone.
fn handle_watch(
    shared: &Shared,
    writer: &mut TcpStream,
    query: &KernelQuery,
    backend: Option<&str>,
    wait_ms: Option<u64>,
) -> bool {
    let route = match SynthRoute::resolve(shared, backend) {
        Ok(route) => route,
        Err(message) => return write_message(writer, &Response::Error { message }).is_ok(),
    };
    let wait = Duration::from_millis(wait_ms.unwrap_or(DEFAULT_WATCH_WAIT_MS));
    let Some((rx, last)) = shared.watch.attach(route.flight_key(query), wait) else {
        return write_message(
            writer,
            &Response::Error {
                message: "no in-flight search for this query".to_string(),
            },
        )
        .is_ok();
    };
    let registry = sortsynth_obs::registry();
    registry
        .counter(
            names::WATCH_STREAMS_TOTAL,
            "Watch streams attached to in-flight searches.",
        )
        .inc();
    let frames = registry.counter(
        names::WATCH_FRAMES_TOTAL,
        "Progress frames streamed to watchers.",
    );
    // Prime with the latest frame, then stream live ones. The hub
    // guarantees termination: every flight ends with a `finished` frame
    // (synthesized as `Abandoned` if the search unwound).
    if let Some(frame) = last {
        let finished = frame.finished;
        if write_message(writer, &Response::Progress(frame)).is_err() {
            return false;
        }
        frames.inc();
        if finished {
            return true;
        }
    }
    loop {
        match rx.recv() {
            Ok(frame) => {
                let finished = frame.finished;
                if write_message(writer, &Response::Progress(frame)).is_err() {
                    return false;
                }
                frames.inc();
                if finished {
                    return true;
                }
            }
            Err(_) => {
                // The flight was replaced out from under us; end the stream
                // explicitly rather than leaving the client waiting.
                return write_message(
                    writer,
                    &Response::Error {
                        message: "watch stream interrupted".to_string(),
                    },
                )
                .is_ok();
            }
        }
    }
}

/// Deadline stamped when the request is admitted: synth requests honour
/// their own `timeout_ms`, falling back to the server default.
fn admission_deadline(shared: &Shared, request: &Request) -> Option<Instant> {
    match request {
        Request::Synth { timeout_ms, .. } => timeout_ms
            .map(Duration::from_millis)
            .or(shared.default_timeout)
            .map(|t| Instant::now() + t),
        _ => None,
    }
}

fn execute(shared: &Shared, job: &Job) -> Response {
    match &job.request {
        Request::Ping => Response::Pong,
        Request::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis((*ms).min(MAX_SLEEP_MS)));
            Response::Slept
        }
        Request::Check { machine, program } => match machine.parse_program(program) {
            Ok(prog) => Response::Check(CheckReply {
                correct: machine.is_correct(&prog),
                counterexamples: machine.counterexamples(&prog).len() as u64,
            }),
            Err(e) => Response::Error {
                message: format!("parse error: {e}"),
            },
        },
        Request::Analyze { machine, program } => match machine.parse_program(program) {
            Ok(prog) => {
                let report = analyze(&prog, &ThroughputModel::default());
                let verified = sortsynth_verify::verify(machine, &prog);
                Response::Analyze(AnalyzeReply {
                    cycles_per_iteration: report.cycles_per_iteration,
                    critical_path: report.critical_path,
                    port_bound: report.port_bound,
                    issue_bound: report.issue_bound,
                    latency_bound: report.latency_bound,
                    verdict: verified.verdict.wire_name().to_string(),
                    lints: verified
                        .diagnostics
                        .iter()
                        .map(|d| LintReply {
                            kind: d.kind.name().to_string(),
                            severity: d.severity().name().to_string(),
                            index: d.index.map(|i| i as u64),
                            message: d.message.clone(),
                        })
                        .collect(),
                })
            }
            Err(e) => Response::Error {
                message: format!("parse error: {e}"),
            },
        },
        Request::Synth { query, backend, .. } => {
            handle_synth(shared, query, backend.as_deref(), job.deadline, job.span_id)
        }
        // Metrics/stats/watch are answered inline by the connection thread
        // and never enqueued; answer anyway so the protocol stays total.
        Request::Metrics => Response::Metrics {
            text: sortsynth_obs::registry().render_prometheus(),
        },
        Request::Stats => Response::Stats(shared.stats_reply()),
        Request::Watch { .. } => Response::Error {
            message: "watch is answered inline by the connection thread".to_string(),
        },
    }
}

/// How a synth request is executed.
enum SynthRoute {
    /// The classic single-engine A* path.
    Engine,
    /// One named backend through its portfolio adapter.
    Single(BackendKind),
    /// A first-win race over this roster.
    Race(Vec<BackendKind>),
}

impl SynthRoute {
    /// Resolves the request's `backend` field against the server default.
    /// The error is the message for a `Response::Error` (kept as a bare
    /// `String` so the `Err` variant stays small).
    fn resolve(shared: &Shared, backend: Option<&str>) -> Result<SynthRoute, String> {
        match backend {
            None => Ok(match &shared.portfolio_route {
                Some(kinds) => SynthRoute::Race(kinds.clone()),
                None => SynthRoute::Engine,
            }),
            Some("portfolio") => Ok(SynthRoute::Race(
                shared
                    .portfolio_route
                    .clone()
                    .unwrap_or_else(|| BackendKind::ALL.to_vec()),
            )),
            Some(name) => match BackendKind::parse(name) {
                Some(kind) => Ok(SynthRoute::Single(kind)),
                None => Err(format!("unknown backend `{name}`")),
            },
        }
    }

    /// Single-flight key: routes that can produce different answers (or do
    /// different amounts of work) must not coalesce with each other, so the
    /// route perturbs the query fingerprint. The classic path keeps the
    /// bare fingerprint for wire compatibility with older clients.
    fn flight_key(&self, query: &KernelQuery) -> u64 {
        match self {
            SynthRoute::Engine => query.fingerprint(),
            SynthRoute::Single(kind) => query.fingerprint() ^ fnv1a(kind.name().as_bytes()),
            SynthRoute::Race(_) => query.fingerprint() ^ fnv1a(b"portfolio"),
        }
    }
}

fn handle_synth(
    shared: &Shared,
    query: &KernelQuery,
    backend: Option<&str>,
    deadline: Option<Instant>,
    span_id: u64,
) -> Response {
    // Deadline may already have expired in the queue.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Response::Timeout(TimeoutReply {
            generated: 0,
            expanded: 0,
            elapsed_ms: 0,
            cancelled: false,
        });
    }
    if let Some(entry) = shared.cache.get(query) {
        return entry_reply(&entry, ReplySource::Cache);
    }
    let route = match SynthRoute::resolve(shared, backend) {
        Ok(route) => route,
        Err(message) => return Response::Error { message },
    };
    match shared.flights.join(route.flight_key(query)) {
        Role::Follower(Some(response)) => {
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            sortsynth_obs::registry()
                .counter(
                    names::SINGLEFLIGHT_COALESCED_TOTAL,
                    "Requests coalesced onto an identical in-flight search.",
                )
                .inc();
            mark_coalesced(response)
        }
        Role::Follower(None) => Response::Error {
            message: "coalesced search was abandoned".to_string(),
        },
        Role::Leader(token) => {
            shared.searches_started.fetch_add(1, Ordering::SeqCst);
            sortsynth_obs::registry()
                .counter(
                    names::SEARCHES_STARTED_TOTAL,
                    "Searches started by single-flight leaders.",
                )
                .inc();
            let search_span = Span::child_of(span_id, "search");
            search_span.event(
                "query",
                &[(
                    "fingerprint",
                    FieldValue::Str(format!("{:016x}", query.fingerprint())),
                )],
            );
            let response = match &route {
                SynthRoute::Engine => run_search(shared, query, deadline, route.flight_key(query)),
                SynthRoute::Single(kind) => run_single(shared, query, *kind, deadline),
                SynthRoute::Race(kinds) => run_race(shared, query, kinds, deadline),
            };
            drop(search_span);
            // `run_search` has already published any solution to the cache,
            // so completing the flight here preserves the
            // exactly-one-search invariant (see the singleflight docs).
            token.complete(response.clone());
            response
        }
    }
}

/// Builds the engine configuration the query describes and runs it.
fn run_search(
    shared: &Shared,
    query: &KernelQuery,
    deadline: Option<Instant>,
    flight_key: u64,
) -> Response {
    let machine: Machine = query.machine();
    let mut cfg = SynthesisConfig::new(machine);
    cfg.threads = shared.search_threads;
    cfg.optimal_instrs_only = query.optimal_instrs_only;
    cfg.budget_viability = query.budget_viability;
    cfg.max_len = query.max_len;
    cfg.cut = query.cut.map(|cut| match cut {
        CutSpec::Factor { millis } => Cut::Factor(millis as f64 / 1000.0),
        CutSpec::Additive { add } => Cut::Additive(add),
    });
    if let Some(deadline) = deadline {
        cfg.budget = SearchBudget::with_deadline(deadline);
    }
    cfg.mem_budget_bytes = shared.search_mem_limit;
    cfg.sizing_path = shared.sizing_path.clone();
    // Every engine search is observable: register the flight so watchers
    // can attach, and (when configured) leave a flight recording on disk.
    // The engine's guaranteed final snapshot publishes the `finished`
    // frame; the guard covers the unwind path with a synthetic one.
    let _watch_guard = shared.watch.begin(flight_key);
    let recorder = shared.record_dir.as_ref().and_then(|dir| {
        let seq = shared.recording_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("search-{:016x}-{seq}.ssfr", query.fingerprint()));
        FlightRecorder::create(&path).ok()
    });
    let hub = Arc::clone(&shared.watch);
    cfg.progress_hook = Some(ProgressHook::new(move |p| {
        if let Some(recorder) = &recorder {
            // Recording is best-effort: a full disk must not fail a search.
            let _ = recorder.record(&p.recorder_frame());
        }
        hub.publish(flight_key, &ProgressReply::from_progress(p));
    }));

    let result = synthesize(&cfg);
    match result.outcome {
        Outcome::Solved | Outcome::SolvedAll | Outcome::Exhausted => {
            match result.first_program() {
                Some(program) => {
                    let entry = CacheEntry {
                        query: query.clone(),
                        program,
                        minimal_certified: result.minimal_certified,
                        search_millis: result.stats.search_time.as_millis() as u64,
                        gate_checksum: None,
                    };
                    // A full disk is not a reason to withhold the answer; the
                    // entry still lands in the memory front.
                    let _ = shared.cache.insert(entry.clone());
                    let mut response = entry_reply(&entry, ReplySource::Computed);
                    if let Response::Synth(reply) = &mut response {
                        reply.distance_table_skipped = result.stats.distance_table_skipped;
                    }
                    response
                }
                None => Response::Synth(SynthReply {
                    program: None,
                    found_len: None,
                    minimal_certified: false,
                    source: ReplySource::Computed,
                    search_millis: result.stats.search_time.as_millis() as u64,
                    distance_table_skipped: result.stats.distance_table_skipped,
                    backend: None,
                }),
            }
        }
        Outcome::TimeLimit | Outcome::Cancelled => Response::Timeout(TimeoutReply {
            generated: result.stats.generated,
            expanded: result.stats.expanded,
            elapsed_ms: result.stats.search_time.as_millis() as u64,
            cancelled: result.outcome == Outcome::Cancelled,
        }),
        Outcome::NodeLimit => Response::Error {
            message: "search hit an unexpected node limit".to_string(),
        },
    }
}

/// The request deadline as a cooperative backend budget.
fn backend_budget(deadline: Option<Instant>) -> SearchBudget {
    match deadline {
        Some(deadline) => SearchBudget::with_deadline(deadline),
        None => SearchBudget::unlimited(),
    }
}

/// Runs one named backend through its portfolio adapter.
fn run_single(
    shared: &Shared,
    query: &KernelQuery,
    kind: BackendKind,
    deadline: Option<Instant>,
) -> Response {
    let out = backend_for(kind).run(query, &backend_budget(deadline), None);
    let elapsed_ms = out.elapsed.as_millis() as u64;
    match out.status {
        BackendStatus::Found {
            program,
            minimal_certified,
        } => {
            // Stochastic arms bypass the race's verify gate on this path,
            // so gate here: an unverifiable program must never be served
            // (or cached) as an answer.
            if let Err(e) = sortsynth_verify::gate(&query.machine(), &program) {
                return Response::Error {
                    message: format!("backend `{}` produced a rejected program: {e}", kind.name()),
                };
            }
            let entry = CacheEntry {
                query: query.clone(),
                program,
                minimal_certified,
                search_millis: elapsed_ms,
                gate_checksum: None,
            };
            let _ = shared.cache.insert(entry.clone());
            with_backend(
                entry_reply(&entry, ReplySource::Computed),
                Some(kind.name().to_string()),
            )
        }
        BackendStatus::NoProgram => with_backend(
            Response::Synth(SynthReply {
                program: None,
                found_len: None,
                minimal_certified: false,
                source: ReplySource::Computed,
                search_millis: elapsed_ms,
                distance_table_skipped: false,
                backend: None,
            }),
            Some(kind.name().to_string()),
        ),
        BackendStatus::Budget => Response::Timeout(TimeoutReply {
            generated: 0,
            expanded: 0,
            elapsed_ms,
            cancelled: false,
        }),
        BackendStatus::Unsupported => Response::Error {
            message: format!("backend `{}` does not support this query", kind.name()),
        },
    }
}

/// Races `kinds` through the portfolio executor, records the outcome into
/// the learned dispatch policy, and persists the table.
fn run_race(
    shared: &Shared,
    query: &KernelQuery,
    kinds: &[BackendKind],
    deadline: Option<Instant>,
) -> Response {
    let budget = backend_budget(deadline);
    // Race against a snapshot so arms never block on the policy lock.
    let snapshot = shared
        .policy
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let report = Portfolio::from_kinds(kinds).run(query, &budget, Some(&snapshot));
    shared.portfolio_races.fetch_add(1, Ordering::Relaxed);
    if report.widened {
        shared.portfolio_widened.fetch_add(1, Ordering::Relaxed);
    }
    {
        let mut policy = shared.policy.lock().unwrap_or_else(|e| e.into_inner());
        policy.record(query, &report);
        if let Some(path) = &shared.policy_path {
            // Persistence is best-effort: a full disk must not fail the
            // request whose answer is already in hand.
            let _ = policy.save(path);
        }
    }
    let elapsed_ms = report.elapsed.as_millis() as u64;
    match (report.winner, report.program) {
        (Some(winner), Some(program)) => {
            shared.portfolio_wins.fetch_add(1, Ordering::Relaxed);
            let entry = CacheEntry {
                query: query.clone(),
                program,
                minimal_certified: report.minimal_certified,
                search_millis: elapsed_ms,
                gate_checksum: None,
            };
            let _ = shared.cache.insert(entry.clone());
            with_backend(
                entry_reply(&entry, ReplySource::Computed),
                Some(winner.name().to_string()),
            )
        }
        _ if budget.is_exhausted() => Response::Timeout(TimeoutReply {
            generated: 0,
            expanded: 0,
            elapsed_ms,
            cancelled: false,
        }),
        // Every arm completed without a program: a genuine (exact-arm)
        // no-program answer for the query's bounds.
        _ => Response::Synth(SynthReply {
            program: None,
            found_len: None,
            minimal_certified: false,
            source: ReplySource::Computed,
            search_millis: elapsed_ms,
            distance_table_skipped: false,
            backend: None,
        }),
    }
}

/// Stamps the producing backend onto a synth reply.
fn with_backend(mut response: Response, backend: Option<String>) -> Response {
    if let Response::Synth(reply) = &mut response {
        reply.backend = backend;
    }
    response
}

fn entry_reply(entry: &CacheEntry, source: ReplySource) -> Response {
    Response::Synth(SynthReply {
        program: Some(entry.query.machine().format_program(&entry.program)),
        found_len: Some(entry.program.len() as u32),
        minimal_certified: entry.minimal_certified,
        source,
        search_millis: entry.search_millis,
        distance_table_skipped: false,
        backend: None,
    })
}

fn mark_coalesced(response: Response) -> Response {
    match response {
        Response::Synth(mut reply) => {
            reply.source = ReplySource::Coalesced;
            Response::Synth(reply)
        }
        other => other,
    }
}
