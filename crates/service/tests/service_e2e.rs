//! End-to-end service tests: cold/warm round trips over a real TCP socket,
//! cache persistence across server restarts, single-flight coalescing, load
//! shedding, and deadline propagation.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use sortsynth_cache::KernelQuery;
use sortsynth_isa::{IsaMode, Machine};
use sortsynth_service::{
    Client, ReplySource, Request, Response, Server, ServerHandle, ServiceConfig,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sortsynth-svc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn start(config: ServiceConfig) -> ServerHandle {
    Server::bind(config).expect("bind").spawn()
}

fn local_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServiceConfig::default()
    }
}

/// A query whose search space is astronomically larger than any test budget:
/// n = 4 with no pruning aids and a length bound below nothing reachable
/// quickly — guaranteed to consume whatever deadline it is given.
fn slow_query() -> KernelQuery {
    KernelQuery {
        n: 4,
        scratch: 1,
        mode: IsaMode::Cmov,
        max_len: Some(15),
        optimal_instrs_only: false,
        budget_viability: false,
        cut: None,
    }
}

#[test]
fn synth_round_trip_cold_warm_and_persistent() {
    let dir = tmp_dir("roundtrip");
    let query = KernelQuery::best(3, 1, IsaMode::Cmov);

    let handle = start(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..local_config()
    });
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.ping().unwrap(), Response::Pong);

    // Cold: the search runs and the kernel comes back minimal (§5.3: 11
    // instructions for n = 3).
    let Response::Synth(cold) = client.synth(query.clone(), Some(60_000)).unwrap() else {
        panic!("expected synth reply");
    };
    assert_eq!(cold.source, ReplySource::Computed);
    assert_eq!(cold.found_len, Some(11));
    let program_text = cold.program.clone().expect("kernel text");
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let program = machine.parse_program(&program_text).unwrap();
    assert!(machine.is_correct(&program));

    // Warm: identical query is a cache hit with the identical kernel.
    let Response::Synth(warm) = client.synth(query.clone(), Some(60_000)).unwrap() else {
        panic!("expected synth reply");
    };
    assert_eq!(warm.source, ReplySource::Cache);
    assert_eq!(warm.program.as_deref(), Some(program_text.as_str()));
    assert_eq!(handle.searches_started(), 1);
    handle.shutdown().unwrap();

    // Restart over the same directory: the kernel is served from the
    // recovered log without any search.
    let handle = start(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..local_config()
    });
    assert_eq!(handle.cache_stats().load.loaded, 1);
    let mut client = Client::connect(handle.addr()).unwrap();
    let Response::Synth(persisted) = client.synth(query, Some(60_000)).unwrap() else {
        panic!("expected synth reply");
    };
    assert_eq!(persisted.source, ReplySource::Cache);
    assert_eq!(persisted.program.as_deref(), Some(program_text.as_str()));
    assert_eq!(handle.searches_started(), 0);
    handle.shutdown().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn check_and_analyze_ops() {
    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let machine = Machine::new(2, 1, IsaMode::Cmov);
    let cas = "mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1".to_string();

    let Response::Check(good) = client.check(machine.clone(), cas.clone()).unwrap() else {
        panic!("expected check reply");
    };
    assert!(good.correct);
    assert_eq!(good.counterexamples, 0);

    let Response::Check(bad) = client.check(machine.clone(), "mov r1 r2".into()).unwrap() else {
        panic!("expected check reply");
    };
    assert!(!bad.correct);
    assert_eq!(bad.counterexamples, 2);

    let Response::Analyze(report) = client.analyze(machine.clone(), cas).unwrap() else {
        panic!("expected analyze reply");
    };
    assert!(report.cycles_per_iteration > 0.0);
    assert!(report.critical_path > 0);
    // The CAS is a one-comparator network: the verifier certifies it and
    // has nothing to complain about.
    assert_eq!(report.verdict, "certified-network");
    assert!(report.lints.is_empty());

    // A kernel with a dead write draws a structured lint.
    let Response::Analyze(linted) = client
        .analyze(
            machine.clone(),
            "mov s1 r1; mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1".into(),
        )
        .unwrap()
    else {
        panic!("expected analyze reply");
    };
    assert!(linted
        .lints
        .iter()
        .any(|l| l.kind == "write-after-write" && l.index == Some(0)));

    // Malformed program text is an error, not a dead connection.
    let Response::Error { .. } = client.check(machine, "frobnicate r1 r2".into()).unwrap() else {
        panic!("expected error reply");
    };
    assert_eq!(client.ping().unwrap(), Response::Pong);
    handle.shutdown().unwrap();
}

#[test]
fn concurrent_identical_requests_run_exactly_one_search() {
    let handle = start(ServiceConfig {
        workers: 8,
        ..local_config()
    });
    let addr = handle.addr();
    // A query distinct from every other test's so the cache is cold.
    let query = KernelQuery::best(3, 2, IsaMode::Cmov);

    const CLIENTS: usize = 8;
    let replies = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let query = query.clone();
                scope.spawn(move |_| {
                    let mut client = Client::connect(addr).unwrap();
                    client.synth(query, Some(60_000)).unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();

    let mut programs = Vec::new();
    for reply in &replies {
        let Response::Synth(synth) = reply else {
            panic!("expected synth reply, got {reply:?}");
        };
        programs.push(synth.program.clone().expect("kernel"));
    }
    programs.sort();
    programs.dedup();
    assert_eq!(programs.len(), 1, "all clients see the same kernel");
    assert_eq!(
        handle.searches_started(),
        1,
        "N identical concurrent requests must coalesce to one search"
    );
    handle.shutdown().unwrap();
}

#[test]
fn expired_deadline_returns_timeout_and_worker_survives() {
    let handle = start(ServiceConfig {
        workers: 2,
        ..local_config()
    });
    let mut client = Client::connect(handle.addr()).unwrap();

    let Response::Timeout(timeout) = client.synth(slow_query(), Some(300)).unwrap() else {
        panic!("expected timeout");
    };
    // Partial diagnostics: the search did run and report progress.
    assert!(timeout.generated > 0);
    assert!(timeout.elapsed_ms <= 5_000);
    assert!(!timeout.cancelled);

    // The worker that timed out is alive and can complete real work.
    assert_eq!(client.ping().unwrap(), Response::Pong);
    let Response::Synth(reply) = client
        .synth(KernelQuery::best(2, 1, IsaMode::Cmov), Some(60_000))
        .unwrap()
    else {
        panic!("expected synth reply");
    };
    assert_eq!(reply.found_len, Some(4));
    handle.shutdown().unwrap();
}

#[test]
fn full_admission_queue_sheds_load() {
    let handle = start(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        ..local_config()
    });
    let addr = handle.addr();

    let outcome = crossbeam::thread::scope(|scope| {
        // Occupy the only worker.
        let busy = scope.spawn(move |_| {
            let mut client = Client::connect(addr).unwrap();
            client.request(&Request::Sleep { ms: 800 }).unwrap()
        });
        std::thread::sleep(Duration::from_millis(200));
        // Fill the queue's single slot.
        let queued = scope.spawn(move |_| {
            let mut client = Client::connect(addr).unwrap();
            client.request(&Request::Sleep { ms: 100 }).unwrap()
        });
        std::thread::sleep(Duration::from_millis(200));
        // Worker busy + queue full → this one must be shed immediately.
        let mut client = Client::connect(addr).unwrap();
        let shed = client.ping().unwrap();
        (busy.join().unwrap(), queued.join().unwrap(), shed)
    })
    .unwrap();

    assert_eq!(outcome.0, Response::Slept);
    assert_eq!(outcome.1, Response::Slept);
    assert_eq!(outcome.2, Response::Overloaded);

    // Load shedding is not a failure state: once the backlog drains, the
    // server answers again.
    let mut client = Client::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(900));
    assert_eq!(client.ping().unwrap(), Response::Pong);
    handle.shutdown().unwrap();
}

#[test]
fn queries_with_different_toggles_are_distinct_cache_keys() {
    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    let best = KernelQuery::best(2, 1, IsaMode::Cmov);
    let plain = KernelQuery {
        optimal_instrs_only: false,
        budget_viability: false,
        cut: None,
        ..best.clone()
    };
    let Response::Synth(a) = client.synth(best, Some(60_000)).unwrap() else {
        panic!("expected synth reply");
    };
    let Response::Synth(b) = client.synth(plain, Some(60_000)).unwrap() else {
        panic!("expected synth reply");
    };
    assert_eq!(a.source, ReplySource::Computed);
    assert_eq!(
        b.source,
        ReplySource::Computed,
        "distinct key, distinct search"
    );
    assert_eq!(handle.searches_started(), 2);
    handle.shutdown().unwrap();
}

#[test]
fn exhausted_bound_reports_no_program() {
    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    // No 2-instruction kernel sorts n = 2 (the CAS needs 4): the layered
    // search exhausts the bound and says so.
    let query = KernelQuery {
        max_len: Some(2),
        optimal_instrs_only: false,
        budget_viability: true,
        cut: None,
        ..KernelQuery::best(2, 1, IsaMode::Cmov)
    };
    let Response::Synth(reply) = client.synth(query, Some(60_000)).unwrap() else {
        panic!("expected synth reply");
    };
    assert_eq!(reply.program, None);
    assert_eq!(reply.found_len, None);
    handle.shutdown().unwrap();
}

#[test]
fn coalesced_source_is_reported() {
    // Directly exercise the follower path: a slow search with several
    // concurrent identical requests — at least one of them must have
    // joined the in-flight search rather than leading it or hitting the
    // cache (searches_started == 1 while no cache entry existed at launch
    // time for any of them, since all were admitted before completion).
    let handle = start(ServiceConfig {
        workers: 4,
        ..local_config()
    });
    let addr = handle.addr();
    let query = KernelQuery::best(3, 1, IsaMode::MinMax);
    let sources = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let query = query.clone();
                scope.spawn(move |_| {
                    let mut client = Client::connect(addr).unwrap();
                    match client.synth(query, Some(60_000)).unwrap() {
                        Response::Synth(reply) => reply.source,
                        other => panic!("unexpected {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();
    assert_eq!(handle.searches_started(), 1);
    assert_eq!(
        sources
            .iter()
            .filter(|s| **s == ReplySource::Computed)
            .count(),
        1,
        "exactly one request computed; the rest coalesced or hit the cache"
    );
    handle.shutdown().unwrap();
}

#[test]
fn portfolio_route_races_persists_policy_and_reports_the_winner() {
    let dir = tmp_dir("portfolio");
    let handle = start(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..local_config()
    });
    let mut client = Client::connect(handle.addr()).unwrap();

    // Explicit portfolio route: a verified winner with the known-optimal
    // n = 3 length, and the reply names the producing backend.
    let query = KernelQuery::best(3, 1, IsaMode::Cmov);
    let Response::Synth(reply) = client
        .synth_with(query.clone(), Some(120_000), Some("portfolio".into()))
        .unwrap()
    else {
        panic!("expected synth reply");
    };
    assert_eq!(reply.source, ReplySource::Computed);
    assert_eq!(reply.found_len, Some(11));
    let winner = reply.backend.clone().expect("winner backend name");
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let program = machine
        .parse_program(reply.program.as_deref().unwrap())
        .unwrap();
    assert!(machine.is_correct(&program));

    // The race's answer landed in the query-keyed cache: a plain request
    // for the same query is a cache hit, not another race.
    let Response::Synth(warm) = client.synth(query.clone(), Some(60_000)).unwrap() else {
        panic!("expected synth reply");
    };
    assert_eq!(warm.source, ReplySource::Cache);
    assert_eq!(warm.backend, None, "cache hits carry no backend");

    // Stats expose the race counters and the learned dispatch table, and
    // the table row for the winner records its win.
    let Response::Stats(stats) = client.stats().unwrap() else {
        panic!("expected stats reply");
    };
    assert_eq!(stats.portfolio_races, 1);
    assert_eq!(stats.portfolio_wins, 1);
    let row = stats
        .portfolio
        .iter()
        .find(|r| r.shape == "3/1/cmov" && r.backend == winner)
        .expect("dispatch row for the winner");
    assert_eq!(row.wins, 1);

    // The policy persisted next to the cache.
    assert!(dir.join("portfolio_policy.json").exists());

    // A single named backend answers with its own name; an unknown one is
    // a protocol error, not a crash.
    let single = KernelQuery::best(2, 1, IsaMode::Cmov);
    let Response::Synth(reply) = client
        .synth_with(single.clone(), Some(60_000), Some("astar".into()))
        .unwrap()
    else {
        panic!("expected synth reply");
    };
    assert_eq!(reply.found_len, Some(4));
    assert_eq!(reply.backend.as_deref(), Some("astar"));
    // (An uncached query — routing is resolved only after the cache miss.)
    match client
        .synth_with(
            KernelQuery::best(2, 1, IsaMode::MinMax),
            Some(60_000),
            Some("z3".into()),
        )
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("unknown backend"), "{message}"),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown().unwrap();

    // A restarted server reloads the learned table from disk.
    let handle = start(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..local_config()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    let Response::Stats(stats) = client.stats().unwrap() else {
        panic!("expected stats reply");
    };
    assert!(
        stats.portfolio.iter().any(|r| r.shape == "3/1/cmov"),
        "dispatch table survives restart"
    );
    handle.shutdown().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}
