//! Live-attach end-to-end: a watcher on a real TCP connection streams
//! progress frames from an in-flight, coalesced search, and the server's
//! flight recorder leaves a readable recording of the same run.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use sortsynth_cache::KernelQuery;
use sortsynth_isa::IsaMode;
use sortsynth_service::{Client, Response, Server, ServiceConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sortsynth-watch-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A query whose search runs for seconds in a test build: n = 4 without the
/// distance table (whose construction would delay the first progress frame)
/// and a deadline that expires long after several 500 ms progress-floor
/// ticks have fired.
fn slow_query() -> KernelQuery {
    let mut query = KernelQuery::best(4, 1, IsaMode::Cmov);
    query.optimal_instrs_only = false;
    query
}

#[test]
fn watcher_streams_frames_from_a_coalesced_flight_and_recorder_persists_them() {
    let record_dir = tmp_dir("rec");
    let handle = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        record_dir: Some(record_dir.clone()),
        ..ServiceConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();
    let query = slow_query();

    // Two identical synth requests: one leads, one coalesces. A watcher
    // attaches to the same flight and streams until the search times out.
    let synth_a = {
        let query = query.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.synth(query, Some(2_500)).unwrap()
        })
    };
    let synth_b = {
        let query = query.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.synth(query, Some(2_500)).unwrap()
        })
    };
    let mut watcher = Client::connect(addr).unwrap();
    watcher
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let frames = watcher
        .watch(query.clone(), None, Some(10_000))
        .expect("flight is live long enough to attach");

    let a = synth_a.join().unwrap();
    let b = synth_b.join().unwrap();
    assert!(
        matches!(a, Response::Timeout(_)) && matches!(b, Response::Timeout(_)),
        "the deliberately slow query must time out: {a:?} / {b:?}"
    );
    assert_eq!(
        handle.searches_started(),
        1,
        "watch rode one coalesced search"
    );

    // The stream: at least two frames, strictly growing expansion counts,
    // terminated by the finished frame carrying the outcome and live
    // per-shard memory levels.
    assert!(frames.len() >= 2, "got {} frames", frames.len());
    for pair in frames.windows(2) {
        assert!(pair[1].expanded >= pair[0].expanded);
        assert!(!pair[0].finished, "only the last frame is final");
    }
    let last = frames.last().unwrap();
    assert!(last.finished);
    assert_eq!(last.outcome.as_deref(), Some("TimeLimit"));
    assert!(!last.shards.is_empty());
    assert!(last.shards[0].arena_bytes > 0);

    // After the stream the connection is back in request/response.
    assert!(matches!(watcher.ping().unwrap(), Response::Pong));

    // The recorder left the same run on disk, parseable and finished.
    let recordings: Vec<_> = fs::read_dir(&record_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ssfr"))
        .collect();
    assert_eq!(recordings.len(), 1, "one flight, one recording");
    let recording = sortsynth_obs::read_recording(&recordings[0]).unwrap();
    assert!(recording.frames.len() >= 2);
    let final_frame = recording.frames.last().unwrap();
    assert!(final_frame.finished);
    assert_eq!(final_frame.outcome.as_deref(), Some("TimeLimit"));
    assert_eq!(
        final_frame.expanded, last.expanded,
        "recording and stream agree"
    );

    handle.shutdown().unwrap();
    let _ = fs::remove_dir_all(&record_dir);
}

#[test]
fn watch_without_a_matching_flight_errors_after_the_wait_window() {
    let handle = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServiceConfig::default()
    })
    .expect("bind")
    .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let err = client
        .watch(KernelQuery::best(2, 1, IsaMode::Cmov), None, Some(50))
        .expect_err("no flight to attach to");
    assert!(err.to_string().contains("no in-flight search"), "{err}");
    // The connection survives the refused watch.
    assert!(matches!(client.ping().unwrap(), Response::Pong));
    handle.shutdown().unwrap();
}
