//! Observability contract of the service: single-flight deduplication must
//! be visible in the instrumentation. For N identical concurrent requests
//! the trace carries exactly one `search` span, and the
//! `singleflight_coalesced` counter advances by exactly N - 1.
//!
//! This file is its own integration-test binary on purpose: the obs
//! registry and trace dispatch are process-global, so the assertions here
//! must not share a process with unrelated service traffic.

use std::sync::Arc;

use sortsynth_cache::KernelQuery;
use sortsynth_isa::IsaMode;
use sortsynth_obs::{names, EventKind, RingBuffer};
use sortsynth_service::{Client, Response, Server, ServiceConfig, StatsReply};

#[test]
fn coalesced_requests_emit_one_search_span_and_n_minus_1_coalesced_increments() {
    let ring = Arc::new(RingBuffer::new(16384));
    let sub = sortsynth_obs::add_subscriber(ring.clone());
    sortsynth_obs::set_enabled(true);

    let handle = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        ..ServiceConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();
    // A cold query whose search takes milliseconds — long enough that all
    // eight concurrent requests join the flight before the leader finishes.
    let query = KernelQuery::best(3, 2, IsaMode::MinMax);

    let coalesced_before =
        sortsynth_obs::registry().counter_value(names::SINGLEFLIGHT_COALESCED_TOTAL);
    let searches_before = sortsynth_obs::registry().counter_value(names::SEARCHES_STARTED_TOTAL);

    const CLIENTS: usize = 8;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let query = query.clone();
                scope.spawn(move |_| {
                    let mut client = Client::connect(addr).unwrap();
                    let reply = client.synth(query, Some(60_000)).unwrap();
                    assert!(matches!(reply, Response::Synth(_)), "got {reply:?}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    })
    .unwrap();

    // Exactly one leader ran a search; every other client coalesced onto it.
    assert_eq!(handle.searches_started(), 1);
    assert_eq!(
        sortsynth_obs::registry().counter_value(names::SEARCHES_STARTED_TOTAL) - searches_before,
        1,
    );
    assert_eq!(
        sortsynth_obs::registry().counter_value(names::SINGLEFLIGHT_COALESCED_TOTAL)
            - coalesced_before,
        (CLIENTS - 1) as u64,
        "N identical concurrent requests must record N - 1 coalesced hits"
    );

    // The same numbers flow through the `stats` protocol verb.
    let mut client = Client::connect(addr).unwrap();
    let Response::Stats(StatsReply {
        requests_total,
        searches_started,
        singleflight_coalesced,
        ..
    }) = client.stats().unwrap()
    else {
        panic!("expected stats reply");
    };
    assert_eq!(requests_total, CLIENTS as u64);
    assert_eq!(searches_started, 1);
    assert_eq!(singleflight_coalesced, (CLIENTS - 1) as u64);

    // The `metrics` verb renders a Prometheus exposition covering the
    // request, cache, search, and SAT metric families.
    let Response::Metrics { text } = client.metrics().unwrap() else {
        panic!("expected metrics reply");
    };
    for family in [
        "# TYPE sortsynth_requests_total counter",
        "sortsynth_cache_misses_total",
        "sortsynth_search_runs_total 1",
        "sortsynth_sat_conflicts_total",
        "sortsynth_singleflight_coalesced_total 7",
    ] {
        assert!(
            text.contains(family),
            "exposition missing {family:?}:\n{text}"
        );
    }

    handle.shutdown().unwrap();
    sortsynth_obs::set_enabled(false);
    sortsynth_obs::remove_subscriber(sub);

    // The trace contains exactly one `search` span (the leader's), parented
    // into exactly one of the eight request spans.
    let events = ring.drain();
    let search_spans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name == "search")
        .collect();
    assert_eq!(
        search_spans.len(),
        1,
        "expected exactly one search span, got {}",
        search_spans.len()
    );
    // `stats`/`metrics` are answered inline without a span, so only the
    // eight synth requests open request spans.
    let request_starts = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name == "request")
        .count();
    assert_eq!(request_starts, CLIENTS);
    let parent = search_spans[0].parent.expect("search span has a parent");
    assert!(
        events.iter().any(|e| e.kind == EventKind::SpanStart
            && e.name == "request"
            && e.span == Some(parent)),
        "search span's parent must be a request span"
    );
}
