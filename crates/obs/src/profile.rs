//! Phase profiler: sampling-free instrumented timers over the engine's hot
//! phases, cheap enough to leave compiled into release binaries.
//!
//! The search engines account wall time to a small fixed [`Phase`] taxonomy
//! (open-list selection, successor generation, canonicalization, interning,
//! routing, verification) so hot-loop claims — "the canonicalizing sort is
//! the bottleneck", "routing is free" — can be argued from attribution
//! instead of intuition. Design constraints, in order:
//!
//! 1. **Off means off.** The profiler is disabled by default. An
//!    instrumented loop reads the global switch *once per run* into a local
//!    bool ([`PhaseProbe::new`] does the single relaxed load); every
//!    per-expansion probe then branches on that register-resident bool and
//!    touches no shared state. No atomics, no clock reads on the off path.
//! 2. **Cheap when on.** Timestamps come from [`timestamp()`] — the TSC on
//!    x86-64 (a handful of nanoseconds, non-serializing) with a monotonic
//!    clock fallback elsewhere. Probes are placed at phase *boundaries*
//!    (a few per expansion), never per candidate, and a probe measures only
//!    one expansion cycle in [`SAMPLE_STRIDE`] ([`PhaseProbe::begin_cycle`]
//!    decides; totals are scaled back up at conversion). Expansion cost is
//!    homogeneous enough that the systematic sample converges within a few
//!    hundred expansions, and the measured overhead on the synthesis
//!    headline stays ≤1% (pinned by the `obs_overhead` bench).
//! 3. **Per-worker accumulation.** Each engine worker owns a cache-line
//!    padded [`PhaseProbe`]; totals are folded together once at the end of
//!    the run and published to the process-wide registry
//!    ([`publish_phase_nanos`]), so concurrent workers never contend.
//!
//! Raw tick counts are converted to nanoseconds lazily via a one-shot
//! calibration against the monotonic clock ([`ticks_to_nanos`]), so the
//! hot path never multiplies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics::Counter;

/// The phase taxonomy. One slot per distinguishable section of the
/// synthesis pipeline; phases are contiguous in time within a worker, so a
/// probe attributes each inter-boundary interval to exactly one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Distance / successor-table construction (once per run).
    TableBuild = 0,
    /// Open-list pop, stale/goal checks, and loop bookkeeping.
    Select = 1,
    /// Successor generation: instruction filtering, viability + cuts, and
    /// state stepping (fused in one pass over the action set).
    Step = 2,
    /// Canonicalizing sort + dedup + key hashing of surviving successors.
    Canonicalize = 3,
    /// Closed-set dedup, arena interning, and open-list pushes (merge).
    Intern = 4,
    /// Parallel successor routing: batching, channel sends, inbox drains.
    Route = 5,
    /// Static verification gate on candidate solutions.
    VerifyGate = 6,
}

/// Number of phases (array sizing).
pub const PHASE_COUNT: usize = 7;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::TableBuild,
        Phase::Select,
        Phase::Step,
        Phase::Canonicalize,
        Phase::Intern,
        Phase::Route,
        Phase::VerifyGate,
    ];

    /// Short identifier used in metric names and reports.
    pub fn token(self) -> &'static str {
        match self {
            Phase::TableBuild => "table_build",
            Phase::Select => "select",
            Phase::Step => "step_viability",
            Phase::Canonicalize => "canonicalize_hash",
            Phase::Intern => "intern_merge",
            Phase::Route => "route",
            Phase::VerifyGate => "verify_gate",
        }
    }

    /// One-line description for reports.
    pub fn describe(self) -> &'static str {
        match self {
            Phase::TableBuild => "distance/successor table construction",
            Phase::Select => "open-list pop, stale/goal checks",
            Phase::Step => "successor generation: viability, cuts, stepping",
            Phase::Canonicalize => "canonicalizing sort + key hash",
            Phase::Intern => "closed-set dedup, arena intern, open push",
            Phase::Route => "parallel successor routing",
            Phase::VerifyGate => "static verification gate",
        }
    }
}

/// The operator switch. Off by default; flipped by `sortsynth profile`, the
/// overhead bench, and tests.
static PROFILER_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables phase profiling process-wide. Takes effect for runs
/// *started* after the call (each run latches the switch once).
pub fn set_enabled(on: bool) {
    PROFILER_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether phase profiling is enabled — one relaxed load.
#[inline]
pub fn enabled() -> bool {
    PROFILER_ENABLED.load(Ordering::Relaxed)
}

/// A raw monotonic timestamp in ticks. On x86-64 this is the TSC (constant
/// rate on every CPU this project targets, ~7 ns per read, non-serializing
/// — exact fencing does not matter for phase accounting). Elsewhere it
/// falls back to the monotonic clock in nanoseconds.
#[inline]
pub fn timestamp() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC has no memory effects and is available on every x86-64.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        clock_nanos()
    }
}

/// Nanoseconds on the monotonic clock since the process profile epoch.
#[cfg(not(target_arch = "x86_64"))]
fn clock_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Ticks per nanosecond, calibrated once against the monotonic clock. Only
/// reached at run *end* (tick→nanos conversion), never on the hot path.
fn ticks_per_nano() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        #[cfg(not(target_arch = "x86_64"))]
        {
            1.0
        }
        #[cfg(target_arch = "x86_64")]
        {
            let wall = Instant::now();
            let t0 = timestamp();
            // ~20 ms spin: long enough that clock-read latency is noise.
            while wall.elapsed().as_millis() < 20 {
                std::hint::spin_loop();
            }
            let ticks = timestamp().wrapping_sub(t0);
            let nanos = wall.elapsed().as_nanos() as u64;
            (ticks as f64 / nanos as f64).max(1e-9)
        }
    })
}

/// Converts raw [`timestamp`] ticks to nanoseconds.
pub fn ticks_to_nanos(ticks: u64) -> u64 {
    (ticks as f64 / ticks_per_nano()) as u64
}

/// Expansion-sampling stride: a probe measures one expansion cycle in this
/// many (power of two), scaling totals back up in [`PhaseProbe::nanos`].
/// At ~18 ns per TSC read and a few laps per expansion, full instrumentation
/// costs several percent of a microsecond-scale hot loop; sampling divides
/// that by the stride while the estimate stays within a percent or two of
/// truth on anything longer than a few hundred expansions.
pub const SAMPLE_STRIDE: u64 = 8;

/// Per-worker phase accumulator + boundary stamp, padded to a cache line so
/// an array of worker probes never false-shares.
#[derive(Debug, Clone)]
#[repr(align(128))]
pub struct PhaseProbe {
    on: bool,
    /// Whether the *current* expansion cycle is being measured (always equal
    /// to `on` until the first [`PhaseProbe::begin_cycle`]).
    active: bool,
    cycles: u64,
    last: u64,
    ticks: [u64; PHASE_COUNT],
}

impl Default for PhaseProbe {
    fn default() -> Self {
        PhaseProbe::new()
    }
}

impl PhaseProbe {
    /// Latches the global switch (the run's one relaxed load) and takes the
    /// first boundary stamp if profiling is on.
    pub fn new() -> Self {
        let on = enabled();
        PhaseProbe {
            on,
            active: on,
            cycles: 0,
            last: if on { timestamp() } else { 0 },
            ticks: [0; PHASE_COUNT],
        }
    }

    /// A probe that is off regardless of the global switch.
    pub fn disabled() -> Self {
        PhaseProbe {
            on: false,
            active: false,
            cycles: 0,
            last: 0,
            ticks: [0; PHASE_COUNT],
        }
    }

    /// Whether this probe is recording.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Marks the start of one expansion cycle and decides whether it is in
    /// the measured sample (one in [`SAMPLE_STRIDE`]). Call at the top of
    /// the engine loop; every lap until the next `begin_cycle` belongs to
    /// this cycle. On the off path this is one branch on a local bool.
    #[inline]
    pub fn begin_cycle(&mut self) {
        if self.on {
            self.cycles = self.cycles.wrapping_add(1);
            self.active = self.cycles & (SAMPLE_STRIDE - 1) == 0;
            if self.active {
                self.last = timestamp();
            }
        }
    }

    /// Attributes the interval since the previous boundary to `phase` and
    /// restarts the interval. No-op unless the current cycle is sampled;
    /// the entire off-path is one branch on a local bool.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        if self.active {
            let t = timestamp();
            self.ticks[phase as usize] += t.wrapping_sub(self.last);
            self.last = t;
        }
    }

    /// Restarts the interval without attributing the elapsed time to any
    /// phase (for sections deliberately left out of the taxonomy, e.g. idle
    /// waits in parallel workers).
    #[inline]
    pub fn skip(&mut self) {
        if self.active {
            self.last = timestamp();
        }
    }

    /// Adds a pre-measured tick interval to `phase` (for callers that stamp
    /// manually).
    #[inline]
    pub fn add_ticks(&mut self, phase: Phase, ticks: u64) {
        if self.active {
            self.ticks[phase as usize] += ticks;
        }
    }

    /// Folds another probe's totals into this one.
    pub fn merge(&mut self, other: &PhaseProbe) {
        for i in 0..PHASE_COUNT {
            self.ticks[i] += other.ticks[i];
        }
    }

    /// The accumulated totals converted to nanoseconds and scaled back up
    /// by [`SAMPLE_STRIDE`] (only one cycle in the stride was measured),
    /// indexed by `Phase as usize`. All zero when the probe was off.
    pub fn nanos(&self) -> [u64; PHASE_COUNT] {
        if self.ticks.iter().all(|&t| t == 0) {
            return [0; PHASE_COUNT];
        }
        let mut out = [0u64; PHASE_COUNT];
        for (o, &t) in out.iter_mut().zip(&self.ticks) {
            *o = ticks_to_nanos(t) * SAMPLE_STRIDE;
        }
        out
    }
}

/// The Prometheus counter for one phase:
/// `sortsynth_phase_<token>_nanos_total`.
pub fn phase_counter(phase: Phase) -> std::sync::Arc<Counter> {
    crate::registry().counter(
        &format!("sortsynth_phase_{}_nanos_total", phase.token()),
        "Nanoseconds attributed to this pipeline phase by the profiler.",
    )
}

/// Registers every phase counter so the families appear in the exposition
/// even before the first profiled run.
pub fn register_phase_counters() {
    for phase in Phase::ALL {
        phase_counter(phase);
    }
}

/// Publishes a run's per-phase nanosecond totals to the process-wide
/// registry. No-op for an all-zero array (profiler was off).
pub fn publish_phase_nanos(nanos: &[u64; PHASE_COUNT]) {
    if nanos.iter().all(|&n| n == 0) {
        return;
    }
    for phase in Phase::ALL {
        let n = nanos[phase as usize];
        if n != 0 {
            phase_counter(phase).add(n);
        }
    }
}

/// Times `f` and attributes the elapsed nanoseconds to `phase` directly on
/// the process-wide counter — for one-shot sections outside an engine
/// worker (the verification gate, portfolio arms). Free when profiling is
/// off beyond the one relaxed load.
pub fn time_global<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let value = f();
    phase_counter(phase).add(start.elapsed().as_nanos() as u64);
    value
}

/// Cache-line padded atomic, for shared per-shard high-water marks updated
/// from hot loops without false sharing.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct PaddedU64(pub AtomicU64);

impl PaddedU64 {
    /// Relaxed read.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Relaxed write.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Relaxed monotonic maximum.
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable switch is process-global; tests that toggle it serialize.
    fn switch_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn probe_off_accumulates_nothing() {
        let _guard = switch_lock();
        set_enabled(false);
        let mut probe = PhaseProbe::new();
        assert!(!probe.is_on());
        probe.lap(Phase::Step);
        probe.lap(Phase::Intern);
        assert_eq!(probe.nanos(), [0; PHASE_COUNT]);
    }

    #[test]
    fn probe_on_attributes_intervals() {
        let _guard = switch_lock();
        set_enabled(true);
        let mut probe = PhaseProbe::new();
        assert!(probe.is_on());
        std::thread::sleep(std::time::Duration::from_millis(2));
        probe.lap(Phase::Step);
        std::thread::sleep(std::time::Duration::from_millis(1));
        probe.lap(Phase::Canonicalize);
        set_enabled(false);
        let nanos = probe.nanos();
        assert!(
            nanos[Phase::Step as usize] >= 1_000_000,
            "step interval covers the 2ms sleep: {nanos:?}"
        );
        assert!(
            nanos[Phase::Canonicalize as usize] >= 500_000,
            "canonicalize interval covers the 1ms sleep: {nanos:?}"
        );
        assert_eq!(nanos[Phase::Intern as usize], 0);
    }

    #[test]
    fn merge_and_publish() {
        let _guard = switch_lock();
        set_enabled(true);
        let mut a = PhaseProbe::new();
        std::thread::sleep(std::time::Duration::from_millis(1));
        a.lap(Phase::Route);
        let mut b = PhaseProbe::new();
        std::thread::sleep(std::time::Duration::from_millis(1));
        b.lap(Phase::Route);
        set_enabled(false);
        a.merge(&b);
        let nanos = a.nanos();
        assert!(nanos[Phase::Route as usize] >= 1_500_000, "{nanos:?}");
        let before = crate::registry().counter_value("sortsynth_phase_route_nanos_total");
        publish_phase_nanos(&nanos);
        let after = crate::registry().counter_value("sortsynth_phase_route_nanos_total");
        assert_eq!(after - before, nanos[Phase::Route as usize]);
    }

    #[test]
    fn disabled_probe_ignores_global_switch() {
        let _guard = switch_lock();
        set_enabled(true);
        let mut probe = PhaseProbe::disabled();
        probe.lap(Phase::Select);
        set_enabled(false);
        assert_eq!(probe.nanos(), [0; PHASE_COUNT]);
    }

    #[test]
    fn tick_conversion_is_sane() {
        let wall = Instant::now();
        let t0 = timestamp();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let ticks = timestamp().wrapping_sub(t0);
        let nanos = ticks_to_nanos(ticks);
        let wall_nanos = wall.elapsed().as_nanos() as u64;
        // Within 25% of the wall clock (calibration + sleep jitter).
        assert!(
            nanos > wall_nanos / 2 && nanos < wall_nanos * 2,
            "converted {nanos} ns vs wall {wall_nanos} ns"
        );
    }

    #[test]
    fn phase_tokens_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for phase in Phase::ALL {
            assert!(seen.insert(phase.token()), "duplicate {}", phase.token());
            assert!(!phase.describe().is_empty());
        }
    }
}
