//! Well-known metric names shared across the sortsynth crates.
//!
//! Instrumented code gets handles via `registry().counter(NAME, HELP)`; the
//! service calls [`register_well_known`] at startup so the exposition always
//! contains every family — a scraper sees `sortsynth_requests_total 0`
//! rather than a missing series before the first request arrives.

use std::sync::Arc;

use crate::metrics::{registry, Histogram, LATENCY_BUCKETS};

// --- request / service ---
/// Requests accepted into the admission queue.
pub const REQUESTS_TOTAL: &str = "sortsynth_requests_total";
/// Requests shed because the admission queue was full.
pub const REQUESTS_SHED_TOTAL: &str = "sortsynth_requests_shed_total";
/// End-to-end request latency (queue wait + execution), seconds.
pub const REQUEST_SECONDS: &str = "sortsynth_request_seconds";
/// Jobs currently waiting in the admission queue.
pub const QUEUE_DEPTH: &str = "sortsynth_queue_depth";
/// Jobs currently executing on workers.
pub const INFLIGHT_REQUESTS: &str = "sortsynth_inflight_requests";
/// Worker panics caught and converted to error replies.
pub const WORKER_PANICS_TOTAL: &str = "sortsynth_worker_panics_total";
/// Requests that joined an identical in-flight search instead of starting
/// their own.
pub const SINGLEFLIGHT_COALESCED_TOTAL: &str = "sortsynth_singleflight_coalesced_total";
/// Searches started by single-flight leaders.
pub const SEARCHES_STARTED_TOTAL: &str = "sortsynth_searches_started_total";

// --- cache ---
/// In-memory cache hits.
pub const CACHE_MEMORY_HITS_TOTAL: &str = "sortsynth_cache_memory_hits_total";
/// Disk-log hits promoted into memory.
pub const CACHE_DISK_HITS_TOTAL: &str = "sortsynth_cache_disk_hits_total";
/// Lookups that missed both tiers.
pub const CACHE_MISSES_TOTAL: &str = "sortsynth_cache_misses_total";
/// Entries inserted.
pub const CACHE_INSERTIONS_TOTAL: &str = "sortsynth_cache_insertions_total";
/// Entries evicted from the in-memory LRU.
pub const CACHE_EVICTIONS_TOTAL: &str = "sortsynth_cache_evictions_total";
/// Disk entries rejected by the verification gate.
pub const CACHE_VERIFY_REJECTED_TOTAL: &str = "sortsynth_cache_verify_rejected_total";
/// Latency of disk-log scans on a memory miss, seconds.
pub const CACHE_DISK_PROMOTION_SECONDS: &str = "sortsynth_cache_disk_promotion_seconds";

// --- verification ---
/// Gate admissions decided by a symbolic permutation certificate.
pub const VERIFY_SYMBOLIC_CERTIFIED_TOTAL: &str = "sortsynth_verify_symbolic_certified_total";
/// Gate rejections decided by a symbolic permutation refutation.
pub const VERIFY_SYMBOLIC_REFUTED_TOTAL: &str = "sortsynth_verify_symbolic_refuted_total";
/// Symbolic analyses that exceeded their budget inside the gate.
pub const VERIFY_SYMBOLIC_BAILOUT_TOTAL: &str = "sortsynth_verify_symbolic_bailout_total";
/// Gate decisions that fell back to the exhaustive permutation oracle.
pub const VERIFY_ORACLE_TOTAL: &str = "sortsynth_verify_oracle_total";
/// Cache recoveries that skipped re-verification via a valid checksum stamp.
pub const VERIFY_GATE_SKIPPED_TOTAL: &str = "sortsynth_verify_gate_skipped_total";
/// End-to-end gate latency, seconds.
pub const VERIFY_GATE_SECONDS: &str = "sortsynth_verify_gate_seconds";

// --- search ---
/// Search engine runs completed (any outcome).
pub const SEARCH_RUNS_TOTAL: &str = "sortsynth_search_runs_total";
/// States expanded across all searches.
pub const SEARCH_EXPANDED_TOTAL: &str = "sortsynth_search_expanded_total";
/// States generated across all searches.
pub const SEARCH_GENERATED_TOTAL: &str = "sortsynth_search_generated_total";
/// Searches that ended in `Outcome::Cancelled`.
pub const SEARCH_CANCELLED_TOTAL: &str = "sortsynth_search_cancelled_total";
/// States pruned by the dead-write cut.
pub const SEARCH_DEAD_WRITE_PRUNED_TOTAL: &str = "sortsynth_search_dead_write_pruned_total";
/// States pruned by the value-flow cut.
pub const SEARCH_VALUE_FLOW_PRUNED_TOTAL: &str = "sortsynth_search_value_flow_pruned_total";
/// Heuristic lookups that skipped the distance table.
pub const SEARCH_DISTANCE_TABLE_SKIPPED_TOTAL: &str =
    "sortsynth_search_distance_table_skipped_total";
/// States pruned by cost-bound cuts.
pub const SEARCH_CUT_PRUNED_TOTAL: &str = "sortsynth_search_cut_pruned_total";
/// States pruned by the viability filter.
pub const SEARCH_VIABILITY_PRUNED_TOTAL: &str = "sortsynth_search_viability_pruned_total";
/// Duplicate states dropped by the closed set.
pub const SEARCH_DEDUP_HITS_TOTAL: &str = "sortsynth_search_dedup_hits_total";
/// Search runs executed by the sharded parallel engine.
pub const SEARCH_PARALLEL_RUNS_TOTAL: &str = "sortsynth_search_parallel_runs_total";
/// Successors routed across shard boundaries in parallel searches.
pub const SEARCH_ROUTED_TOTAL: &str = "sortsynth_search_routed_total";
/// Open entries stolen by idle parallel workers.
pub const SEARCH_STEALS_TOTAL: &str = "sortsynth_search_steals_total";
/// Unique canonical states interned into search arenas.
pub const SEARCH_INTERNED_STATES_TOTAL: &str = "sortsynth_search_interned_states_total";
/// Expansions served entirely from already-reserved scratch capacity.
pub const SEARCH_SCRATCH_REUSED_TOTAL: &str = "sortsynth_search_scratch_reused_total";
/// Open entries discarded at pop as stale (reopened or bound-overtaken).
pub const SEARCH_STALE_POPS_TOTAL: &str = "sortsynth_search_stale_pops_total";
/// Empty-bucket cursor scans performed by bucketed open lists.
pub const SEARCH_BUCKET_SCANS_TOTAL: &str = "sortsynth_search_bucket_scans_total";
/// SWAR lane passes taken by batch expansion.
pub const SEARCH_SWAR_BATCHES_TOTAL: &str = "sortsynth_search_swar_batches_total";
/// Bytes of assignment storage held by the last run's state arena(s).
pub const SEARCH_ARENA_BYTES: &str = "sortsynth_search_arena_bytes";
/// Estimated resident search-bookkeeping bytes (arena + closed map +
/// per-node metadata) of the last run.
pub const SEARCH_RESIDENT_BYTES: &str = "sortsynth_search_resident_bytes";
/// Bytes held in external-memory spill segments by the last run.
pub const SEARCH_SPILLED_BYTES: &str = "sortsynth_search_spilled_bytes";
/// Spill segment files held by the last run.
pub const SEARCH_SPILL_SEGMENTS: &str = "sortsynth_search_spill_segments";
/// Frontier states spilled to disk segments.
pub const SEARCH_SPILLED_OPEN_TOTAL: &str = "sortsynth_search_spilled_open_total";
/// Closed-set entries evicted to sorted disk segments.
pub const SEARCH_SPILLED_CLOSED_TOTAL: &str = "sortsynth_search_spilled_closed_total";
/// Duplicates caught by delayed duplicate detection against spilled
/// closed segments.
pub const SEARCH_DDD_DEDUP_HITS_TOTAL: &str = "sortsynth_search_ddd_dedup_hits_total";
/// Frontier states restored from resume journals.
pub const SEARCH_RESUMED_FRONTIER_TOTAL: &str = "sortsynth_search_resumed_frontier_total";
/// Latency of spill segment writes, seconds.
pub const SEARCH_SPILL_WRITE_SECONDS: &str = "sortsynth_search_spill_write_seconds";
/// Latency of spill segment reads (frontier streams + DDD joins), seconds.
pub const SEARCH_SPILL_READ_SECONDS: &str = "sortsynth_search_spill_read_seconds";

// --- portfolio ---
/// Portfolio races executed (one per query reaching the executor).
pub const PORTFOLIO_RACES_TOTAL: &str = "sortsynth_portfolio_races_total";
/// Races that produced a verify-gated winner.
pub const PORTFOLIO_WIN_TOTAL: &str = "sortsynth_portfolio_win_total";
/// Arms that completed with a solution but lost the race (or were
/// out-raced before finishing verification).
pub const PORTFOLIO_LOSS_TOTAL: &str = "sortsynth_portfolio_loss_total";
/// Arms stopped early by race cancellation.
pub const PORTFOLIO_CANCELLED_TOTAL: &str = "sortsynth_portfolio_cancelled_total";
/// Candidate winners rejected by the static verification gate.
pub const PORTFOLIO_VERIFY_REJECTED_TOTAL: &str = "sortsynth_portfolio_verify_rejected_total";
/// Races whose first (policy-ranked) wave missed and widened to the rest.
pub const PORTFOLIO_WIDENED_TOTAL: &str = "sortsynth_portfolio_widened_total";
/// Time from race start to the first verified solution, seconds.
pub const PORTFOLIO_TTFS_SECONDS: &str = "sortsynth_portfolio_ttfs_seconds";

// --- introspection ---
/// Flight-recorder frames appended (across all recordings).
pub const RECORDER_FRAMES_TOTAL: &str = "sortsynth_recorder_frames_total";
/// Flight-recorder bytes written (headers + payloads).
pub const RECORDER_BYTES_TOTAL: &str = "sortsynth_recorder_bytes_total";
/// Flight-recorder segment rotations.
pub const RECORDER_ROTATIONS_TOTAL: &str = "sortsynth_recorder_rotations_total";
/// Watch streams opened against in-flight searches.
pub const WATCH_STREAMS_TOTAL: &str = "sortsynth_watch_streams_total";
/// Progress frames delivered to watch subscribers.
pub const WATCH_FRAMES_TOTAL: &str = "sortsynth_watch_frames_total";

// --- SAT / CEGIS ---
/// CDCL conflicts across all solver runs.
pub const SAT_CONFLICTS_TOTAL: &str = "sortsynth_sat_conflicts_total";
/// CDCL restarts across all solver runs.
pub const SAT_RESTARTS_TOTAL: &str = "sortsynth_sat_restarts_total";
/// Clauses learned across all solver runs.
pub const SAT_LEARNED_CLAUSES_TOTAL: &str = "sortsynth_sat_learned_clauses_total";
/// CEGIS refinement iterations across all synthesis calls.
pub const CEGIS_ITERATIONS_TOTAL: &str = "sortsynth_cegis_iterations_total";

/// The spill segment write-latency histogram (registered on first use).
pub fn search_spill_write_seconds() -> Arc<Histogram> {
    registry().histogram(
        SEARCH_SPILL_WRITE_SECONDS,
        "Spill segment write latency in seconds.",
        LATENCY_BUCKETS,
    )
}

/// The spill segment read-latency histogram (registered on first use).
pub fn search_spill_read_seconds() -> Arc<Histogram> {
    registry().histogram(
        SEARCH_SPILL_READ_SECONDS,
        "Spill segment read latency in seconds.",
        LATENCY_BUCKETS,
    )
}

/// The end-to-end request latency histogram (registered on first use).
pub fn request_seconds() -> Arc<Histogram> {
    registry().histogram(
        REQUEST_SECONDS,
        "End-to-end request latency in seconds.",
        LATENCY_BUCKETS,
    )
}

/// The time-to-first-verified-solution histogram (registered on first use).
pub fn portfolio_ttfs_seconds() -> Arc<Histogram> {
    registry().histogram(
        PORTFOLIO_TTFS_SECONDS,
        "Time from race start to the first verified solution, in seconds.",
        LATENCY_BUCKETS,
    )
}

/// The disk-promotion latency histogram (registered on first use).
pub fn cache_disk_promotion_seconds() -> Arc<Histogram> {
    registry().histogram(
        CACHE_DISK_PROMOTION_SECONDS,
        "Disk-log scan latency on memory miss, in seconds.",
        LATENCY_BUCKETS,
    )
}

/// The verification-gate latency histogram (registered on first use).
pub fn verify_gate_seconds() -> Arc<Histogram> {
    registry().histogram(
        VERIFY_GATE_SECONDS,
        "End-to-end verification-gate latency in seconds.",
        LATENCY_BUCKETS,
    )
}

/// Registers every well-known family in the default registry so the
/// Prometheus exposition is complete from the first scrape. Idempotent.
pub fn register_well_known() {
    let r = registry();
    r.counter(
        REQUESTS_TOTAL,
        "Requests accepted into the admission queue.",
    );
    r.counter(
        REQUESTS_SHED_TOTAL,
        "Requests shed because the admission queue was full.",
    );
    request_seconds();
    r.gauge(
        QUEUE_DEPTH,
        "Jobs currently waiting in the admission queue.",
    );
    r.gauge(INFLIGHT_REQUESTS, "Jobs currently executing on workers.");
    r.counter(
        WORKER_PANICS_TOTAL,
        "Worker panics caught and converted to error replies.",
    );
    r.counter(
        SINGLEFLIGHT_COALESCED_TOTAL,
        "Requests coalesced onto an identical in-flight search.",
    );
    r.counter(
        SEARCHES_STARTED_TOTAL,
        "Searches started by single-flight leaders.",
    );

    r.counter(CACHE_MEMORY_HITS_TOTAL, "In-memory cache hits.");
    r.counter(CACHE_DISK_HITS_TOTAL, "Disk-log hits promoted into memory.");
    r.counter(CACHE_MISSES_TOTAL, "Lookups that missed both cache tiers.");
    r.counter(CACHE_INSERTIONS_TOTAL, "Cache entries inserted.");
    r.counter(
        CACHE_EVICTIONS_TOTAL,
        "Entries evicted from the in-memory LRU.",
    );
    r.counter(
        CACHE_VERIFY_REJECTED_TOTAL,
        "Disk entries rejected by the verification gate.",
    );
    cache_disk_promotion_seconds();

    r.counter(
        VERIFY_SYMBOLIC_CERTIFIED_TOTAL,
        "Gate admissions decided by a symbolic permutation certificate.",
    );
    r.counter(
        VERIFY_SYMBOLIC_REFUTED_TOTAL,
        "Gate rejections decided by a symbolic permutation refutation.",
    );
    r.counter(
        VERIFY_SYMBOLIC_BAILOUT_TOTAL,
        "Symbolic analyses that exceeded their budget inside the gate.",
    );
    r.counter(
        VERIFY_ORACLE_TOTAL,
        "Gate decisions that fell back to the exhaustive permutation oracle.",
    );
    r.counter(
        VERIFY_GATE_SKIPPED_TOTAL,
        "Cache recoveries that skipped re-verification via a valid checksum stamp.",
    );
    verify_gate_seconds();

    r.counter(
        SEARCH_RUNS_TOTAL,
        "Search engine runs completed (any outcome).",
    );
    r.counter(
        SEARCH_EXPANDED_TOTAL,
        "States expanded across all searches.",
    );
    r.counter(
        SEARCH_GENERATED_TOTAL,
        "States generated across all searches.",
    );
    r.counter(
        SEARCH_CANCELLED_TOTAL,
        "Searches cancelled via SearchBudget.",
    );
    r.counter(
        SEARCH_DEAD_WRITE_PRUNED_TOTAL,
        "States pruned by the dead-write cut.",
    );
    r.counter(
        SEARCH_VALUE_FLOW_PRUNED_TOTAL,
        "States pruned by the value-flow cut.",
    );
    r.counter(
        SEARCH_DISTANCE_TABLE_SKIPPED_TOTAL,
        "Heuristic lookups that skipped the distance table.",
    );
    r.counter(SEARCH_CUT_PRUNED_TOTAL, "States pruned by cost-bound cuts.");
    r.counter(
        SEARCH_VIABILITY_PRUNED_TOTAL,
        "States pruned by the viability filter.",
    );
    r.counter(
        SEARCH_DEDUP_HITS_TOTAL,
        "Duplicate states dropped by the closed set.",
    );
    r.counter(
        SEARCH_PARALLEL_RUNS_TOTAL,
        "Search runs executed by the sharded parallel engine.",
    );
    r.counter(
        SEARCH_ROUTED_TOTAL,
        "Successors routed across shard boundaries.",
    );
    r.counter(
        SEARCH_STEALS_TOTAL,
        "Open entries stolen by idle parallel workers.",
    );
    r.counter(
        SEARCH_INTERNED_STATES_TOTAL,
        "Unique canonical states interned into search arenas.",
    );
    r.counter(
        SEARCH_SCRATCH_REUSED_TOTAL,
        "Expansions served from already-reserved scratch capacity.",
    );
    r.counter(
        SEARCH_STALE_POPS_TOTAL,
        "Open entries discarded at pop as stale (reopened or bound-overtaken).",
    );
    r.counter(
        SEARCH_BUCKET_SCANS_TOTAL,
        "Empty-bucket cursor scans performed by bucketed open lists.",
    );
    r.counter(
        SEARCH_SWAR_BATCHES_TOTAL,
        "SWAR lane passes taken by batch expansion.",
    );
    r.gauge(
        SEARCH_ARENA_BYTES,
        "Assignment bytes held by the last run's state arena(s).",
    );
    r.gauge(
        SEARCH_RESIDENT_BYTES,
        "Estimated resident search-bookkeeping bytes of the last run.",
    );
    r.gauge(
        SEARCH_SPILLED_BYTES,
        "Bytes held in external-memory spill segments by the last run.",
    );
    r.gauge(
        SEARCH_SPILL_SEGMENTS,
        "Spill segment files held by the last run.",
    );
    r.counter(
        SEARCH_SPILLED_OPEN_TOTAL,
        "Frontier states spilled to disk segments.",
    );
    r.counter(
        SEARCH_SPILLED_CLOSED_TOTAL,
        "Closed-set entries evicted to sorted disk segments.",
    );
    r.counter(
        SEARCH_DDD_DEDUP_HITS_TOTAL,
        "Duplicates caught by delayed duplicate detection.",
    );
    r.counter(
        SEARCH_RESUMED_FRONTIER_TOTAL,
        "Frontier states restored from resume journals.",
    );
    search_spill_write_seconds();
    search_spill_read_seconds();

    r.counter(
        PORTFOLIO_RACES_TOTAL,
        "Portfolio races executed (one per query reaching the executor).",
    );
    r.counter(
        PORTFOLIO_WIN_TOTAL,
        "Races that produced a verify-gated winner.",
    );
    r.counter(
        PORTFOLIO_LOSS_TOTAL,
        "Arms that completed a solution but lost the race.",
    );
    r.counter(
        PORTFOLIO_CANCELLED_TOTAL,
        "Arms stopped early by race cancellation.",
    );
    r.counter(
        PORTFOLIO_VERIFY_REJECTED_TOTAL,
        "Candidate winners rejected by the static verification gate.",
    );
    r.counter(
        PORTFOLIO_WIDENED_TOTAL,
        "Races whose first wave missed and widened to the remaining arms.",
    );
    portfolio_ttfs_seconds();

    r.counter(RECORDER_FRAMES_TOTAL, "Flight-recorder frames appended.");
    r.counter(RECORDER_BYTES_TOTAL, "Flight-recorder bytes written.");
    r.counter(
        RECORDER_ROTATIONS_TOTAL,
        "Flight-recorder segment rotations.",
    );
    r.counter(
        WATCH_STREAMS_TOTAL,
        "Watch streams opened against in-flight searches.",
    );
    r.counter(
        WATCH_FRAMES_TOTAL,
        "Progress frames delivered to watch subscribers.",
    );
    crate::profile::register_phase_counters();

    r.counter(
        SAT_CONFLICTS_TOTAL,
        "CDCL conflicts across all solver runs.",
    );
    r.counter(SAT_RESTARTS_TOTAL, "CDCL restarts across all solver runs.");
    r.counter(
        SAT_LEARNED_CLAUSES_TOTAL,
        "Clauses learned across all solver runs.",
    );
    r.counter(
        CEGIS_ITERATIONS_TOTAL,
        "CEGIS refinement iterations across all synthesis calls.",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_families_appear_in_exposition() {
        register_well_known();
        register_well_known(); // idempotent
        let text = registry().render_prometheus();
        for name in [
            REQUESTS_TOTAL,
            REQUEST_SECONDS,
            QUEUE_DEPTH,
            CACHE_MISSES_TOTAL,
            VERIFY_SYMBOLIC_CERTIFIED_TOTAL,
            VERIFY_ORACLE_TOTAL,
            VERIFY_GATE_SKIPPED_TOTAL,
            VERIFY_GATE_SECONDS,
            SEARCH_EXPANDED_TOTAL,
            SEARCH_VALUE_FLOW_PRUNED_TOTAL,
            SEARCH_CANCELLED_TOTAL,
            SEARCH_STALE_POPS_TOTAL,
            SEARCH_BUCKET_SCANS_TOTAL,
            SEARCH_SWAR_BATCHES_TOTAL,
            SEARCH_RESIDENT_BYTES,
            SEARCH_SPILLED_BYTES,
            SEARCH_SPILL_SEGMENTS,
            SEARCH_SPILLED_OPEN_TOTAL,
            SEARCH_SPILLED_CLOSED_TOTAL,
            SEARCH_DDD_DEDUP_HITS_TOTAL,
            SEARCH_RESUMED_FRONTIER_TOTAL,
            SEARCH_SPILL_WRITE_SECONDS,
            SEARCH_SPILL_READ_SECONDS,
            RECORDER_FRAMES_TOTAL,
            WATCH_FRAMES_TOTAL,
            "sortsynth_phase_step_viability_nanos_total",
            SAT_CONFLICTS_TOTAL,
            CEGIS_ITERATIONS_TOTAL,
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "missing family {name}"
            );
        }
    }
}
