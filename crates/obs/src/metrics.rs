//! The metrics registry: lock-free counters, gauges, and fixed-bucket
//! histograms with Prometheus text exposition.
//!
//! Registration (name → metric handle) takes a mutex once; every update
//! after that is a relaxed atomic operation on a shared handle, so the hot
//! paths of the service and the search engine never contend on the
//! registry itself.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram with fixed, cumulative-at-render buckets. Observations are
/// in seconds (the Prometheus convention for latency metrics); the sum is
/// kept in integer microseconds so updates stay a single atomic add.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds (seconds), strictly increasing; an implicit `+Inf`
    /// bucket follows.
    bounds: Vec<f64>,
    /// Non-cumulative observation counts per bucket (`bounds.len() + 1`).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

/// Default latency buckets: 100 µs to 60 s, roughly ×2.5 apart — wide
/// enough for both a warm cache hit and an hour-long search's first slice.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0, 60.0,
];

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation, in seconds.
    pub fn observe(&self, secs: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((secs * 1e6) as u64, Ordering::Relaxed);
    }

    /// Records one observation from a [`Duration`].
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }
}

/// One registered metric family.
enum Family {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Family {
    fn kind(&self) -> &'static str {
        match self {
            Family::Counter(_) => "counter",
            Family::Gauge(_) => "gauge",
            Family::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metric families.
///
/// Names follow the Prometheus conventions: `snake_case`, `_total` suffix
/// for counters, `_seconds` for latency histograms. Re-registering an
/// existing name returns the existing handle (help text from the first
/// registration wins); registering the same name as a different metric kind
/// panics — that is a programming error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, (String, Family)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Family,
        pick: impl Fn(&Family) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut families = self.families.lock().expect("registry poisoned");
        let (_, family) = families
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), make()));
        pick(family)
            .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", family.kind()))
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            || Family::Counter(Arc::new(Counter::default())),
            |f| match f {
                Family::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            || Family::Gauge(Arc::new(Gauge::default())),
            |f| match f {
                Family::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Gets or creates a histogram with the given bucket upper bounds
    /// (seconds). The bounds of the first registration win.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            || Family::Histogram(Arc::new(Histogram::new(bounds))),
            |f| match f {
                Family::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Reads a counter's current value (0 if the name is unregistered or
    /// not a counter) — convenient for tests asserting on deltas.
    pub fn counter_value(&self, name: &str) -> u64 {
        let families = self.families.lock().expect("registry poisoned");
        match families.get(name) {
            Some((_, Family::Counter(c))) => c.value(),
            _ => 0,
        }
    }

    /// Reads a gauge's current value (0 if unregistered or not a gauge).
    pub fn gauge_value(&self, name: &str) -> i64 {
        let families = self.families.lock().expect("registry poisoned");
        match families.get(name) {
            Some((_, Family::Gauge(g))) => g.value(),
            _ => 0,
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, cumulative
    /// `_bucket{le="…"}` series plus `_sum`/`_count` for histograms.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, (help, family)) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {}", family.kind());
            match family {
                Family::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.value());
                }
                Family::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.value());
                }
                Family::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cumulative += h.buckets[i].load(Ordering::Relaxed);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// The process-wide default registry every sortsynth crate publishes to.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("t_requests_total", "Requests.");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(reg.counter_value("t_requests_total"), 5);
        // Re-registration returns the same handle.
        reg.counter("t_requests_total", "ignored").inc();
        assert_eq!(c.value(), 6);

        let g = reg.gauge("t_depth", "Depth.");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        g.set(-3);
        assert_eq!(reg.gauge_value("t_depth"), -3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let reg = Registry::new();
        let h = reg.histogram("t_seconds", "Latency.", &[0.01, 0.1, 1.0]);
        h.observe(0.005); // ≤ 0.01
        h.observe(0.05); // ≤ 0.1
        h.observe(0.05);
        h.observe(5.0); // +Inf
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.105).abs() < 1e-3);
        let text = reg.render_prometheus();
        assert!(text.contains("t_seconds_bucket{le=\"0.01\"} 1"));
        assert!(text.contains("t_seconds_bucket{le=\"0.1\"} 3"));
        assert!(text.contains("t_seconds_bucket{le=\"1\"} 3"));
        assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("t_seconds_count 4"));
    }

    #[test]
    fn exposition_has_help_and_type_headers() {
        let reg = Registry::new();
        reg.counter("t_a_total", "Help for a.");
        reg.gauge("t_b", "Help for b.");
        let text = reg.render_prometheus();
        assert!(
            text.contains("# HELP t_a_total Help for a.\n# TYPE t_a_total counter\nt_a_total 0\n")
        );
        assert!(text.contains("# TYPE t_b gauge"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("t_x", "x");
        reg.gauge("t_x", "x");
    }
}
