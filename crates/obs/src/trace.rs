//! Structured tracing: spans with parent links, monotonic timestamps, and
//! pluggable subscribers.
//!
//! Emission is fan-out: every [`Event`] is delivered to each installed
//! [`Subscriber`]. When tracing is [disabled](set_enabled) or no subscriber
//! is installed, span construction and event emission reduce to one relaxed
//! atomic load (plus one atomic increment per span for ID allocation), so
//! instrumented code pays nothing measurable in the common case.
//!
//! Two subscribers ship with the crate: [`RingBuffer`], a bounded
//! latest-events log with a JSON drain (what the service exposes and tests
//! assert on), and [`FileSubscriber`], which streams JSON lines to a file
//! (what the CLI's `--trace` flag uses).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::Level;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Static string — avoids the allocation for well-known names on hot
    /// paths (operation names, outcome tags).
    Static(&'static str),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(s) => write_json_string(out, s),
            FieldValue::Static(s) => write_json_string(out, s),
        }
    }
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was opened.
    SpanStart,
    /// A span closed; carries an `elapsed_us` field.
    SpanEnd,
    /// A point event inside (or outside) a span.
    Point,
    /// A log line mirrored into the event stream.
    Log,
}

impl EventKind {
    fn name(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "event",
            EventKind::Log => "log",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Microseconds since the process trace epoch (monotonic).
    pub micros: u64,
    /// What this event marks.
    pub kind: EventKind,
    /// Severity.
    pub level: Level,
    /// Event (or span) name.
    pub name: &'static str,
    /// The span this event belongs to.
    pub span: Option<u64>,
    /// The span's parent, for `SpanStart` events.
    pub parent: Option<u64>,
    /// Structured payload.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Free-form message (log events).
    pub message: Option<String>,
}

impl Event {
    /// Encodes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"ts_us\":{},\"kind\":\"{}\",\"level\":\"{}\",\"name\":",
            self.micros,
            self.kind.name(),
            self.level.name()
        );
        write_json_string(&mut out, self.name);
        if let Some(span) = self.span {
            let _ = write!(out, ",\"span\":{span}");
        }
        if let Some(parent) = self.parent {
            let _ = write!(out, ",\"parent\":{parent}");
        }
        if let Some(message) = &self.message {
            out.push_str(",\"message\":");
            write_json_string(&mut out, message);
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (key, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, key);
                out.push(':');
                value.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A consumer of trace events. Implementations must be cheap and must not
/// re-enter the tracing facility.
pub trait Subscriber: Send + Sync {
    /// Called once per emitted event, on the emitting thread.
    fn on_event(&self, event: &Event);
}

struct Dispatch {
    subscribers: RwLock<Vec<(u64, Arc<dyn Subscriber>)>>,
    next_id: AtomicU64,
}

fn dispatch() -> &'static Dispatch {
    static DISPATCH: OnceLock<Dispatch> = OnceLock::new();
    DISPATCH.get_or_init(|| Dispatch {
        subscribers: RwLock::new(Vec::new()),
        next_id: AtomicU64::new(1),
    })
}

/// `true` only while tracing is enabled *and* a subscriber is installed —
/// the single flag hot paths check before building an event.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// The operator-facing switch (`set_enabled`); on by default.
static ENABLED: AtomicBool = AtomicBool::new(true);

fn refresh_active() {
    let has_subscribers = !dispatch()
        .subscribers
        .read()
        .expect("subscriber list poisoned")
        .is_empty();
    ACTIVE.store(
        ENABLED.load(Ordering::Relaxed) && has_subscribers,
        Ordering::Relaxed,
    );
}

/// Master switch for event emission (metrics are unaffected). Used by the
/// overhead benchmark to compare instrumented and bare runs.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    refresh_active();
}

/// Whether events are currently being delivered to at least one subscriber.
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs a subscriber; returns a token for [`remove_subscriber`].
pub fn add_subscriber(subscriber: Arc<dyn Subscriber>) -> u64 {
    let d = dispatch();
    let id = d.next_id.fetch_add(1, Ordering::Relaxed);
    d.subscribers
        .write()
        .expect("subscriber list poisoned")
        .push((id, subscriber));
    refresh_active();
    id
}

/// Removes a subscriber installed by [`add_subscriber`].
pub fn remove_subscriber(id: u64) {
    dispatch()
        .subscribers
        .write()
        .expect("subscriber list poisoned")
        .retain(|(sid, _)| *sid != id);
    refresh_active();
}

/// Microseconds since the process trace epoch (first use of the facility).
pub fn now_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Delivers an event to every installed subscriber (no-op when inactive).
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let subscribers = dispatch()
        .subscribers
        .read()
        .expect("subscriber list poisoned");
    for (_, subscriber) in subscribers.iter() {
        subscriber.on_event(&event);
    }
}

/// Emits a point event outside any span.
pub fn event(level: Level, name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !enabled() {
        return;
    }
    emit(Event {
        micros: now_micros(),
        kind: EventKind::Point,
        level,
        name,
        span: None,
        parent: None,
        fields: fields.to_vec(),
        message: None,
    });
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A traced region of work. Opening emits a `span_start` event; dropping
/// emits `span_end` with the elapsed microseconds. IDs are allocated even
/// while tracing is inactive so parent links stay stable across late
/// subscriber installation, but no events are emitted for inactive spans.
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    started: Instant,
    /// Whether the start event was emitted (emit the end only then, so a
    /// subscriber never sees an unpaired `span_end`).
    live: bool,
}

impl Span {
    fn open(
        name: &'static str,
        parent: Option<u64>,
        fields: &[(&'static str, FieldValue)],
    ) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let live = enabled();
        if live {
            emit(Event {
                micros: now_micros(),
                kind: EventKind::SpanStart,
                level: Level::Info,
                name,
                span: Some(id),
                parent,
                fields: fields.to_vec(),
                message: None,
            });
        }
        Span {
            id,
            parent,
            name,
            started: Instant::now(),
            live,
        }
    }

    /// Opens a root span.
    pub fn root(name: &'static str) -> Span {
        Span::open(name, None, &[])
    }

    /// Opens a root span with fields.
    pub fn root_with(name: &'static str, fields: &[(&'static str, FieldValue)]) -> Span {
        Span::open(name, None, fields)
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str) -> Span {
        Span::open(name, Some(self.id), &[])
    }

    /// Opens a span as a child of a bare span ID — for parent links that
    /// cross a thread or queue boundary where the parent `Span` itself
    /// cannot be borrowed (e.g. a worker picking up an enqueued request).
    pub fn child_of(parent: u64, name: &'static str) -> Span {
        Span::open(name, Some(parent), &[])
    }

    /// Opens a child span with fields.
    pub fn child_with(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) -> Span {
        Span::open(name, Some(self.id), fields)
    }

    /// This span's ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Emits a point event inside this span.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if !enabled() {
            return;
        }
        emit(Event {
            micros: now_micros(),
            kind: EventKind::Point,
            level: Level::Info,
            name,
            span: Some(self.id),
            parent: self.parent,
            fields: fields.to_vec(),
            message: None,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live || !enabled() {
            return;
        }
        emit(Event {
            micros: now_micros(),
            kind: EventKind::SpanEnd,
            level: Level::Info,
            name: self.name,
            span: Some(self.id),
            parent: self.parent,
            fields: vec![(
                "elapsed_us",
                FieldValue::U64(self.started.elapsed().as_micros() as u64),
            )],
            message: None,
        });
    }
}

/// A bounded ring buffer of the latest events, drainable as JSON.
pub struct RingBuffer {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingBuffer {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("ring buffer poisoned")
            .drain(..)
            .collect()
    }

    /// Drains the buffer into one JSON array.
    pub fn drain_json(&self) -> String {
        let events = self.drain();
        let mut out = String::from("[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push(']');
        out
    }
}

impl Subscriber for RingBuffer {
    fn on_event(&self, event: &Event) {
        // Clone outside the lock: the deep copy is the expensive part, and
        // many threads funnel through this mutex on busy servers.
        let event = event.clone();
        let mut events = self.events.lock().expect("ring buffer poisoned");
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

/// Default per-segment byte budget for [`FileSubscriber`] rotation.
pub const TRACE_SEGMENT_BYTES: u64 = 64 * 1024 * 1024;
/// Default number of rotated segments kept next to the live log.
pub const TRACE_KEEP_SEGMENTS: usize = 3;

struct FileWriter {
    writer: BufWriter<File>,
    bytes: u64,
}

/// Streams events to a file as JSON lines (one object per line). Buffered;
/// flushed on [`FileSubscriber::flush`] and on drop.
///
/// Long runs don't grow the log without bound: once the live file exceeds
/// its byte budget it is rotated aside (`<path>.1`, `<path>.2`, …, keeping
/// the newest `keep` rotated segments) and a fresh file takes its place.
pub struct FileSubscriber {
    path: PathBuf,
    segment_bytes: u64,
    keep: usize,
    writer: Mutex<FileWriter>,
}

impl FileSubscriber {
    /// Creates (truncating) the log file with the default rotation policy
    /// ([`TRACE_SEGMENT_BYTES`] per segment, [`TRACE_KEEP_SEGMENTS`] kept).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::with_rotation(path, TRACE_SEGMENT_BYTES, TRACE_KEEP_SEGMENTS)
    }

    /// Creates (truncating) the log file, rotating whenever it exceeds
    /// `segment_bytes` and keeping the newest `keep` rotated segments.
    pub fn with_rotation(
        path: impl AsRef<Path>,
        segment_bytes: u64,
        keep: usize,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        Ok(FileSubscriber {
            writer: Mutex::new(FileWriter {
                writer: BufWriter::new(File::create(&path)?),
                bytes: 0,
            }),
            path,
            segment_bytes: segment_bytes.max(1),
            keep: keep.max(1),
        })
    }

    /// Flushes buffered events to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.writer
            .lock()
            .expect("trace file poisoned")
            .writer
            .flush()
    }

    fn rotated(&self, n: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(format!(".{n}"));
        PathBuf::from(name)
    }

    /// Rotates the live file aside and starts a fresh one. Best-effort: a
    /// failed rotation keeps writing to the old file rather than dropping
    /// events.
    fn rotate(&self, state: &mut FileWriter) {
        if state.writer.flush().is_err() {
            return;
        }
        let _ = fs::remove_file(self.rotated(self.keep));
        for n in (1..self.keep).rev() {
            let _ = fs::rename(self.rotated(n), self.rotated(n + 1));
        }
        if fs::rename(&self.path, self.rotated(1)).is_err() {
            return;
        }
        if let Ok(file) = File::create(&self.path) {
            state.writer = BufWriter::new(file);
            state.bytes = 0;
        }
    }
}

impl Subscriber for FileSubscriber {
    fn on_event(&self, event: &Event) {
        let mut state = self.writer.lock().expect("trace file poisoned");
        if state.bytes > self.segment_bytes {
            self.rotate(&mut state);
        }
        let line = event.to_json();
        let _ = state.writer.write_all(line.as_bytes());
        let _ = state.writer.write_all(b"\n");
        state.bytes += line.len() as u64 + 1;
    }
}

impl Drop for FileSubscriber {
    fn drop(&mut self) {
        if let Ok(mut state) = self.writer.lock() {
            let _ = state.writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_link_parents_and_pair_start_end() {
        let ring = Arc::new(RingBuffer::new(64));
        let id = add_subscriber(ring.clone());
        let root_id;
        let child_id;
        {
            let root = Span::root_with("request", &[("op", FieldValue::Str("synth".into()))]);
            root_id = root.id();
            let child = root.child("search");
            child_id = child.id();
            child.event("progress", &[("expanded", FieldValue::U64(7))]);
        }
        remove_subscriber(id);
        let events = ring.drain();
        assert_eq!(events.len(), 5, "{events:?}");
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].span, Some(root_id));
        assert_eq!(events[1].parent, Some(root_id));
        assert_eq!(events[1].span, Some(child_id));
        assert_eq!(events[2].name, "progress");
        assert_eq!(events[2].field("expanded"), Some(&FieldValue::U64(7)));
        // Children close before parents.
        assert_eq!(events[3].kind, EventKind::SpanEnd);
        assert_eq!(events[3].span, Some(child_id));
        assert_eq!(events[4].span, Some(root_id));
        assert!(matches!(
            events[3].field("elapsed_us"),
            Some(FieldValue::U64(_))
        ));
    }

    #[test]
    fn ring_buffer_bounds_and_json_drain() {
        let ring = RingBuffer::new(2);
        for i in 0..5u64 {
            ring.on_event(&Event {
                micros: i,
                kind: EventKind::Point,
                level: Level::Info,
                name: "tick",
                span: None,
                parent: None,
                fields: vec![("i", FieldValue::U64(i))],
                message: None,
            });
        }
        assert_eq!(ring.dropped(), 3);
        let json = ring.drain_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"i\":3") && json.contains("\"i\":4"));
        assert!(!json.contains("\"i\":1"));
        assert_eq!(ring.drain().len(), 0, "drain empties the ring");
    }

    #[test]
    fn json_escapes_strings() {
        let event = Event {
            micros: 1,
            kind: EventKind::Log,
            level: Level::Warn,
            name: "log",
            span: None,
            parent: None,
            fields: vec![("path", FieldValue::Str("a\"b\\c\nd".into()))],
            message: Some("line\t1".into()),
        };
        let json = event.to_json();
        assert!(json.contains("\"path\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"message\":\"line\\t1\""));
    }

    #[test]
    fn inactive_tracing_emits_nothing() {
        // No subscriber installed in this scope → spans are silent even
        // though the master switch is on.
        let ring = Arc::new(RingBuffer::new(8));
        {
            let span = Span::root("quiet");
            span.event("e", &[]);
        }
        let id = add_subscriber(ring.clone());
        remove_subscriber(id);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn file_subscriber_rotates_and_flushes_on_drop() {
        let dir = std::env::temp_dir().join(format!("sstrace-rot-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let event = Event {
            micros: 1,
            kind: EventKind::Point,
            level: Level::Info,
            name: "tick",
            span: None,
            parent: None,
            fields: vec![("payload", FieldValue::Str("x".repeat(64)))],
            message: None,
        };
        let line_len = event.to_json().len() as u64 + 1;
        {
            // Cap at ~4 lines per segment, keep 2 rotated segments.
            let file = FileSubscriber::with_rotation(&path, line_len * 4, 2).unwrap();
            for _ in 0..20 {
                file.on_event(&event);
            }
            // Drop flushes the live segment without an explicit flush().
        }
        let live = fs::read_to_string(&path).unwrap();
        assert!(!live.is_empty(), "flush-on-drop wrote buffered events");
        assert!(live.lines().all(|l| l.contains("\"name\":\"tick\"")));
        let seg = |n: usize| {
            let mut name = path.as_os_str().to_os_string();
            name.push(format!(".{n}"));
            PathBuf::from(name)
        };
        assert!(
            seg(1).exists() && seg(2).exists(),
            "kept 2 rotated segments"
        );
        assert!(!seg(3).exists(), "older segments were discarded");
        let total: u64 = [path.clone(), seg(1), seg(2)]
            .iter()
            .map(|p| fs::metadata(p).unwrap().len())
            .sum();
        assert!(
            total < 20 * line_len,
            "rotation bounded the log: {total} bytes"
        );
    }
}
