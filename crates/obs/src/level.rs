//! Leveled logging: a process-wide severity filter feeding stderr and,
//! when tracing is active, the structured event stream.
//!
//! Messages are printed **verbatim** — no timestamp or level prefix — so
//! converting an existing `eprintln!` to `info!` cannot break anything that
//! parses the output (the service's `# sortsynth service listening on …`
//! line, for instance). Severity and target still reach structured
//! consumers through the mirrored trace event.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::trace::{self, Event, EventKind, FieldValue};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error = 0,
    /// Something suspicious; the operation continues.
    Warn = 1,
    /// High-level progress (the default).
    Info = 2,
    /// Detail useful when debugging a subsystem.
    Debug = 3,
    /// Very fine-grained detail.
    Trace = 4,
}

impl Level {
    /// Lower-case name (`"info"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a case-insensitive level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide log level; messages above it are dropped.
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide log level.
pub fn log_level() -> Level {
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` would currently be emitted.
pub fn log_enabled(level: Level) -> bool {
    level <= log_level()
}

/// Emits an already-formatted log message: prints it verbatim to stderr and
/// mirrors it into the trace stream when a subscriber is listening. Called
/// by the logging macros after the level check; prefer those at call sites.
pub fn log_emit(level: Level, target: &'static str, message: &str) {
    eprintln!("{message}");
    if trace::enabled() {
        trace::emit(Event {
            micros: trace::now_micros(),
            kind: EventKind::Log,
            level,
            name: "log",
            span: None,
            parent: None,
            fields: vec![("target", FieldValue::Str(target.to_string()))],
            message: Some(message.to_string()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_names_round_trip() {
        for lvl in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(lvl.name()), Some(lvl));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn level_filter_orders_severities() {
        let prev = log_level();
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Trace));
        set_log_level(prev);
    }
}
