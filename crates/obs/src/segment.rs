//! Generic checksummed append-only record segments — the WAL discipline
//! shared by the kernel cache's store, the flight recorder, and the search
//! engine's external-memory spill tier.
//!
//! A segment is a header (caller-chosen 8-byte magic + version) followed by
//! length-prefixed records, each guarded by an FNV-1a checksum:
//!
//! ```text
//! header:  magic       (8 bytes)
//!          version     (u32 LE)
//! record*: payload_len (u32 LE)
//!          checksum    (u64 LE — FNV-1a of the payload bytes)
//!          payload
//! ```
//!
//! Every append is one `write_all` + flush, so a crash tears at most the
//! final record. Two read disciplines exist, matching the two consumers:
//!
//! * **Tolerant** ([`SegmentReader::next`] after plain `open`): a torn or
//!   corrupt tail ends the stream, keeping the intact prefix — the flight
//!   recorder's behavior for best-effort post-mortems.
//! * **Strict** ([`SegmentReader::open_strict`] with a known valid length):
//!   any checksum mismatch, short record, or length disagreement *within
//!   the recorded valid length* is a hard [`SegmentError`] — the spill
//!   tier's behavior, because a resume journal that references bytes it
//!   cannot trust must fail loudly, never silently replay.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use crate::recorder::fnv1a;

/// Hard cap on one record payload; anything larger is corruption.
pub const MAX_RECORD: u32 = 64 * 1024 * 1024;

/// Why a strict segment read failed.
#[derive(Debug)]
pub enum SegmentError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header's magic or version did not match.
    BadHeader { path: PathBuf },
    /// A record's checksum did not match its payload, or a record was torn
    /// inside the segment's recorded valid length.
    Checksum { path: PathBuf, at: u64 },
    /// The file is shorter than the recorded valid length.
    Truncated {
        path: PathBuf,
        expected: u64,
        actual: u64,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment i/o error: {e}"),
            SegmentError::BadHeader { path } => {
                write!(f, "bad segment header in {}", path.display())
            }
            SegmentError::Checksum { path, at } => write!(
                f,
                "segment checksum mismatch in {} at byte {at} (torn or corrupt record)",
                path.display()
            ),
            SegmentError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "segment {} truncated: {actual} bytes on disk, {expected} recorded",
                path.display()
            ),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> Self {
        SegmentError::Io(e)
    }
}

/// Appends checksummed records to a fresh segment file.
pub struct SegmentWriter {
    path: PathBuf,
    file: BufWriter<File>,
    bytes: u64,
    records: u64,
}

impl SegmentWriter {
    /// Creates (truncating) a segment at `path` with the given magic and
    /// version.
    pub fn create(path: impl Into<PathBuf>, magic: &[u8; 8], version: u32) -> io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut file = BufWriter::new(file);
        file.write_all(magic)?;
        file.write_all(&version.to_le_bytes())?;
        file.flush()?;
        Ok(SegmentWriter {
            path,
            file,
            bytes: 12,
            records: 0,
        })
    }

    /// Appends one record; flushed before returning so the record survives
    /// any later crash.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        assert!(
            payload.len() as u64 <= MAX_RECORD as u64,
            "oversized record"
        );
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&fnv1a(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.file.flush()?;
        self.bytes += 12 + payload.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Bytes written so far (header + records) — the valid length a journal
    /// records for strict re-reads.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Streams records back out of a segment.
#[derive(Debug)]
pub struct SegmentReader {
    path: PathBuf,
    file: BufReader<File>,
    consumed: u64,
    valid_len: Option<u64>,
    strict: bool,
}

impl SegmentReader {
    /// Opens a segment tolerantly: a torn tail ends the stream without an
    /// error.
    pub fn open(
        path: impl Into<PathBuf>,
        magic: &[u8; 8],
        version: u32,
    ) -> Result<Self, SegmentError> {
        SegmentReader::new(path.into(), magic, version, None, false)
    }

    /// Opens a segment strictly against a recorded valid length: every byte
    /// up to `valid_len` must parse and checksum, or the read fails.
    pub fn open_strict(
        path: impl Into<PathBuf>,
        magic: &[u8; 8],
        version: u32,
        valid_len: u64,
    ) -> Result<Self, SegmentError> {
        SegmentReader::new(path.into(), magic, version, Some(valid_len), true)
    }

    fn new(
        path: PathBuf,
        magic: &[u8; 8],
        version: u32,
        valid_len: Option<u64>,
        strict: bool,
    ) -> Result<Self, SegmentError> {
        let file = File::open(&path)?;
        if strict {
            let actual = file.metadata()?.len();
            let expected = valid_len.unwrap_or(0);
            if actual < expected {
                return Err(SegmentError::Truncated {
                    path,
                    expected,
                    actual,
                });
            }
        }
        let mut file = BufReader::new(file);
        let mut header = [0u8; 12];
        let ok = matches!(read_exact_or_eof(&mut file, &mut header), Ok(true))
            && &header[..8] == magic
            && u32::from_le_bytes(header[8..12].try_into().unwrap()) == version;
        if !ok {
            return Err(SegmentError::BadHeader { path });
        }
        Ok(SegmentReader {
            path,
            file,
            consumed: 12,
            valid_len,
            strict,
        })
    }

    /// The next record's payload, `Ok(None)` at the (valid) end of the
    /// segment. In strict mode any defect before the valid length is an
    /// error; in tolerant mode it ends the stream.
    // Not `Iterator`: the fallible `Result<Option<_>>` shape would have to
    // flip to `Option<Result<_>>` and every caller wants `?` on the outside.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Vec<u8>>, SegmentError> {
        if let Some(valid) = self.valid_len {
            if self.consumed >= valid {
                return Ok(None);
            }
        }
        let mut head = [0u8; 12];
        match read_exact_or_eof(&mut self.file, &mut head) {
            Ok(false) if self.valid_len.is_none() => return Ok(None),
            Ok(true) => {}
            _ => return self.defect(),
        }
        let payload_len = u32::from_le_bytes(head[0..4].try_into().unwrap());
        let checksum = u64::from_le_bytes(head[4..12].try_into().unwrap());
        if payload_len > MAX_RECORD {
            return self.defect();
        }
        if let Some(valid) = self.valid_len {
            if self.consumed + 12 + payload_len as u64 > valid {
                return self.defect();
            }
        }
        let mut payload = vec![0u8; payload_len as usize];
        if !matches!(read_exact_or_eof(&mut self.file, &mut payload), Ok(true))
            || fnv1a(&payload) != checksum
        {
            return self.defect();
        }
        self.consumed += 12 + payload.len() as u64;
        Ok(Some(payload))
    }

    fn defect(&self) -> Result<Option<Vec<u8>>, SegmentError> {
        if self.strict {
            Err(SegmentError::Checksum {
                path: self.path.clone(),
                at: self.consumed,
            })
        } else {
            Ok(None)
        }
    }
}

fn read_exact_or_eof(file: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(ErrorKind::UnexpectedEof, "torn record"))
                }
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Atomically replaces `path` with `payload` wrapped in the segment format
/// (header + checksummed records), via a temp file and rename — the
/// journal-checkpoint primitive. Payloads larger than [`MAX_RECORD`] are
/// split across consecutive records, so a checkpoint's size is bounded only
/// by the filesystem, not the per-record cap.
pub fn write_atomic(path: &Path, magic: &[u8; 8], version: u32, payload: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut w = SegmentWriter::create(&tmp, magic, version)?;
        if payload.is_empty() {
            w.append(payload)?;
        }
        for chunk in payload.chunks(MAX_RECORD as usize) {
            w.append(chunk)?;
        }
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads back a [`write_atomic`] file strictly: at least one intact record,
/// concatenated in order (one per [`MAX_RECORD`]-sized chunk of the
/// original payload).
pub fn read_atomic(path: &Path, magic: &[u8; 8], version: u32) -> Result<Vec<u8>, SegmentError> {
    let len = fs::metadata(path).map_err(SegmentError::Io)?.len();
    let mut r = SegmentReader::open_strict(path, magic, version, len)?;
    let mut payload = r.next()?.ok_or(SegmentError::Checksum {
        path: path.to_path_buf(),
        at: 12,
    })?;
    while let Some(chunk) = r.next()? {
        payload.extend_from_slice(&chunk);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssseg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("seg.bin")
    }

    const MAGIC: &[u8; 8] = b"SSTESTSG";

    #[test]
    fn round_trip_and_valid_length() {
        let path = tmp("rt");
        let mut w = SegmentWriter::create(&path, MAGIC, 1).unwrap();
        w.append(b"alpha").unwrap();
        w.append(b"beta").unwrap();
        let valid = w.bytes();
        assert_eq!(w.records(), 2);
        drop(w);
        let mut r = SegmentReader::open_strict(&path, MAGIC, 1, valid).unwrap();
        assert_eq!(r.next().unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(r.next().unwrap().as_deref(), Some(&b"beta"[..]));
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn strict_read_reports_bit_flip() {
        let path = tmp("flip");
        let mut w = SegmentWriter::create(&path, MAGIC, 1).unwrap();
        w.append(b"payload-bytes").unwrap();
        let valid = w.bytes();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let mut r = SegmentReader::open_strict(&path, MAGIC, 1, valid).unwrap();
        let err = r.next().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn strict_read_reports_truncation() {
        let path = tmp("trunc");
        let mut w = SegmentWriter::create(&path, MAGIC, 1).unwrap();
        w.append(b"will be cut").unwrap();
        let valid = w.bytes();
        drop(w);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = SegmentReader::open_strict(&path, MAGIC, 1, valid).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn tolerant_read_drops_torn_tail() {
        let path = tmp("torn");
        let mut w = SegmentWriter::create(&path, MAGIC, 1).unwrap();
        w.append(b"kept").unwrap();
        w.append(b"torn-away").unwrap();
        drop(w);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut r = SegmentReader::open(&path, MAGIC, 1).unwrap();
        assert_eq!(r.next().unwrap().as_deref(), Some(&b"kept"[..]));
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn atomic_write_round_trips_and_detects_corruption() {
        let path = tmp("atomic");
        write_atomic(&path, MAGIC, 3, b"journal-state").unwrap();
        assert_eq!(read_atomic(&path, MAGIC, 3).unwrap(), b"journal-state");
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(read_atomic(&path, MAGIC, 3).is_err());
    }

    #[test]
    fn atomic_read_concatenates_chunked_records() {
        // `write_atomic` splits payloads over MAX_RECORD into consecutive
        // records; the reader must reassemble them in order. Exercised here
        // with hand-written records so the test doesn't shuffle 64 MiB.
        let path = tmp("chunked");
        let mut w = SegmentWriter::create(&path, MAGIC, 3).unwrap();
        w.append(b"journal-").unwrap();
        w.append(b"state-").unwrap();
        w.append(b"tail").unwrap();
        drop(w);
        assert_eq!(read_atomic(&path, MAGIC, 3).unwrap(), b"journal-state-tail");
    }

    #[test]
    fn wrong_magic_is_a_bad_header() {
        let path = tmp("magic");
        let mut w = SegmentWriter::create(&path, MAGIC, 1).unwrap();
        w.append(b"x").unwrap();
        drop(w);
        assert!(matches!(
            SegmentReader::open(&path, b"WRONGMGC", 1),
            Err(SegmentError::BadHeader { .. })
        ));
    }
}
