//! The flight recorder: a bounded, crash-safe, on-disk ring of search
//! progress snapshots for post-mortem analysis of hour-scale runs.
//!
//! # On-disk format
//!
//! A recording is one or two segment files (`<path>` plus, after a
//! rotation, `<path>.1` holding the previous segment). Each segment is a
//! write-ahead log in the same discipline as the kernel cache's store:
//!
//! ```text
//! header:  "SSFLIGHT"  (8 bytes magic)
//!          version     (u32 LE, currently 2; v1 recordings stay readable)
//! frame*:  seq         (u64 LE — monotonically increasing frame number)
//!          payload_len (u32 LE)
//!          checksum    (u64 LE — FNV-1a of the payload bytes)
//!          payload     (binary frame body, see [`Frame`])
//! ```
//!
//! Every [`FlightRecorder::record`] appends one frame with a single
//! `write_all` + flush, so a crash (including a panicking search worker)
//! can tear at most the final frame — which [`read_recording`] then drops,
//! keeping the intact prefix. The snapshot delivered just before the
//! crash is therefore always recoverable: callers feed the recorder from a
//! progress hook whose delivery precedes the panic propagation.
//!
//! Boundedness: when the live segment exceeds its byte budget the recorder
//! rotates it aside to `<path>.1` (dropping the previous `.1`) and starts a
//! fresh segment, so a recording holds at most two segments ≈ 2× the
//! budget no matter how long the run — the "ring" is chunked at segment
//! granularity to keep every append a pure O(frame) write.
//!
//! # Frame payload
//!
//! Fixed little-endian fields, then a per-shard table:
//!
//! ```text
//! elapsed_micros u64 | expanded u64 | generated u64 | open u64
//! f_bound u64 (u64::MAX = none)
//! viability_pruned u64 | cut_pruned u64 | dedup_hits u64
//! dead_write_pruned u64 | value_flow_pruned u64
//! [v2+] spilled_open u64 | spilled_closed u64 | ddd_dedup_hits u64
//! [v2+] resumed_frontier_states u64 | resident_bytes u64 | spilled_bytes u64
//! flags u8 (bit0 finished, bit1 distance_table_skipped)
//! outcome_len u8 | outcome bytes (UTF-8, empty = none)
//! shard_count u32 | shard* { interned_states u64, arena_bytes u64, open_depth u64 }
//! ```
//!
//! Version 2 inserted the six external-memory counters after the v1 fixed
//! block; the reader keys the layout off the segment header's version and
//! decodes v1 recordings with those fields zeroed, so old recordings stay
//! inspectable.

use std::fs::{self, File, OpenOptions};
use std::io::{self, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Segment magic; eight bytes so the header is naturally aligned.
pub const MAGIC: &[u8; 8] = b"SSFLIGHT";
/// Format version written by new recordings.
pub const VERSION: u32 = 2;
/// Oldest segment version the reader still decodes.
pub const MIN_VERSION: u32 = 1;
/// Hard cap on one frame payload; anything larger is corruption.
pub const MAX_PAYLOAD: u32 = 1024 * 1024;
/// Default live-segment byte budget before rotation (per segment; a
/// recording keeps the live segment plus one rotated predecessor).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

/// FNV-1a over a byte slice — the recorder's frame checksum. (Local copy:
/// `sortsynth-obs` sits below every other crate and depends on nothing.)
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// One recorded progress snapshot. Mirrors the search engine's
/// `SearchProgress` (plus per-shard memory high-water marks) without
/// depending on the search crate — `sortsynth-obs` is the bottom of the
/// dependency stack.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Frame {
    /// Frame number, assigned by the recorder at append time (monotonic
    /// across rotations).
    pub seq: u64,
    /// Microseconds since the search started.
    pub elapsed_micros: u64,
    /// States expanded so far.
    pub expanded: u64,
    /// States generated so far.
    pub generated: u64,
    /// Open-list size (summed across shards).
    pub open: u64,
    /// Current frontier bound: layer depth / last popped f (sequential) or
    /// the incumbent-derived length bound (parallel).
    pub f_bound: Option<u64>,
    /// Viability prunes so far.
    pub viability_pruned: u64,
    /// §3.5 cut prunes so far.
    pub cut_pruned: u64,
    /// Closed-set dedup hits so far.
    pub dedup_hits: u64,
    /// Dead-write cut prunes so far.
    pub dead_write_pruned: u64,
    /// Value-flow cut prunes so far.
    pub value_flow_pruned: u64,
    /// Frontier states spilled to disk segments so far (v2; 0 in v1
    /// recordings).
    pub spilled_open: u64,
    /// Closed-set entries evicted to sorted disk segments so far (v2).
    pub spilled_closed: u64,
    /// Duplicates caught by delayed duplicate detection against spilled
    /// closed segments (v2).
    pub ddd_dedup_hits: u64,
    /// Frontier states restored from a resume journal (v2).
    pub resumed_frontier_states: u64,
    /// Estimated resident search-bookkeeping bytes (v2).
    pub resident_bytes: u64,
    /// Bytes currently held in spill segments (v2).
    pub spilled_bytes: u64,
    /// Whether the distance table was skipped (oversized machine).
    pub distance_table_skipped: bool,
    /// Whether this is the run's final snapshot.
    pub finished: bool,
    /// Outcome tag on the final snapshot (`Solved`, `Cancelled`, …).
    pub outcome: Option<String>,
    /// Per-shard memory high-water marks (one entry for the sequential
    /// engine).
    pub shards: Vec<ShardFrame>,
}

/// Per-shard state of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardFrame {
    /// States interned in this shard's arena.
    pub interned_states: u64,
    /// Bytes held by this shard's assignment arena.
    pub arena_bytes: u64,
    /// This shard's open-list depth.
    pub open_depth: u64,
}

impl Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.elapsed_micros,
            self.expanded,
            self.generated,
            self.open,
            self.f_bound.unwrap_or(u64::MAX),
            self.viability_pruned,
            self.cut_pruned,
            self.dedup_hits,
            self.dead_write_pruned,
            self.value_flow_pruned,
            self.spilled_open,
            self.spilled_closed,
            self.ddd_dedup_hits,
            self.resumed_frontier_states,
            self.resident_bytes,
            self.spilled_bytes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let flags = (self.finished as u8) | ((self.distance_table_skipped as u8) << 1);
        out.push(flags);
        let outcome = self.outcome.as_deref().unwrap_or("");
        let outcome = &outcome.as_bytes()[..outcome.len().min(255)];
        out.push(outcome.len() as u8);
        out.extend_from_slice(outcome);
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&shard.interned_states.to_le_bytes());
            out.extend_from_slice(&shard.arena_bytes.to_le_bytes());
            out.extend_from_slice(&shard.open_depth.to_le_bytes());
        }
    }

    fn decode(seq: u64, payload: &[u8], version: u32) -> Option<Frame> {
        let mut cur = Cursor {
            buf: payload,
            at: 0,
        };
        let mut fixed = [0u64; 16];
        let fixed_count = if version >= 2 { 16 } else { 10 };
        for slot in fixed.iter_mut().take(fixed_count) {
            *slot = cur.u64()?;
        }
        let flags = cur.u8()?;
        let outcome_len = cur.u8()? as usize;
        let outcome_bytes = cur.bytes(outcome_len)?;
        let outcome = if outcome_len == 0 {
            None
        } else {
            Some(String::from_utf8(outcome_bytes.to_vec()).ok()?)
        };
        let shard_count = cur.u32()? as usize;
        // A frame never carries more shards than bytes remaining allow.
        if shard_count > cur.remaining() / 24 {
            return None;
        }
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(ShardFrame {
                interned_states: cur.u64()?,
                arena_bytes: cur.u64()?,
                open_depth: cur.u64()?,
            });
        }
        Some(Frame {
            seq,
            elapsed_micros: fixed[0],
            expanded: fixed[1],
            generated: fixed[2],
            open: fixed[3],
            f_bound: (fixed[4] != u64::MAX).then_some(fixed[4]),
            viability_pruned: fixed[5],
            cut_pruned: fixed[6],
            dedup_hits: fixed[7],
            dead_write_pruned: fixed[8],
            value_flow_pruned: fixed[9],
            spilled_open: fixed[10],
            spilled_closed: fixed[11],
            ddd_dedup_hits: fixed[12],
            resumed_frontier_states: fixed[13],
            resident_bytes: fixed[14],
            spilled_bytes: fixed[15],
            distance_table_skipped: flags & 0b10 != 0,
            finished: flags & 0b1 != 0,
            outcome,
            shards,
        })
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn bytes(&mut self, n: usize) -> Option<&[u8]> {
        let slice = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

struct Inner {
    file: File,
    bytes: u64,
    next_seq: u64,
}

/// A live recording: append-only, checksummed, rotated at the segment byte
/// budget. Thread-safe (a progress hook may fire from any worker).
pub struct FlightRecorder {
    path: PathBuf,
    segment_bytes: u64,
    inner: Mutex<Inner>,
}

fn open_segment(path: &Path) -> io::Result<(File, u64)> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::create_dir_all(dir)?;
    }
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(path)?;
    let mut header = Vec::with_capacity(12);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    file.write_all(&header)?;
    file.flush()?;
    Ok((file, header.len() as u64))
}

/// The rotated-predecessor path for a recording at `path`.
pub fn rotated_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".1");
    PathBuf::from(name)
}

impl FlightRecorder {
    /// Creates (truncating) a recording at `path` with the default segment
    /// budget.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<FlightRecorder> {
        FlightRecorder::with_segment_bytes(path, DEFAULT_SEGMENT_BYTES)
    }

    /// Creates a recording whose live segment rotates once it exceeds
    /// `segment_bytes` (floored to one frame per segment).
    pub fn with_segment_bytes(
        path: impl Into<PathBuf>,
        segment_bytes: u64,
    ) -> io::Result<FlightRecorder> {
        let path = path.into();
        // A fresh recording owns both segment slots.
        let _ = fs::remove_file(rotated_path(&path));
        let (file, bytes) = open_segment(&path)?;
        Ok(FlightRecorder {
            path,
            segment_bytes,
            inner: Mutex::new(Inner {
                file,
                bytes,
                next_seq: 0,
            }),
        })
    }

    /// The live segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one frame (the recorder assigns `frame.seq`); flushed before
    /// returning, so the frame survives any later crash.
    pub fn record(&self, frame: &Frame) -> io::Result<u64> {
        let mut payload = Vec::with_capacity(128);
        frame.encode(&mut payload);
        assert!(payload.len() as u32 <= MAX_PAYLOAD, "oversized frame");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.bytes > self.segment_bytes.max(1) {
            // Rotate: the live segment becomes `.1` (dropping the previous
            // one) and a fresh segment takes its place. Sequence numbers
            // keep counting, so a reader stitches segments unambiguously.
            let (file, bytes) = {
                let _ = fs::remove_file(rotated_path(&self.path));
                fs::rename(&self.path, rotated_path(&self.path))?;
                open_segment(&self.path)?
            };
            inner.file = file;
            inner.bytes = bytes;
            crate::registry()
                .counter(
                    crate::names::RECORDER_ROTATIONS_TOTAL,
                    "Flight-recorder segment rotations.",
                )
                .inc();
        }
        let mut buf = Vec::with_capacity(20 + payload.len());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        inner.file.write_all(&buf)?;
        inner.file.flush()?;
        inner.bytes += buf.len() as u64;
        let registry = crate::registry();
        registry
            .counter(
                crate::names::RECORDER_FRAMES_TOTAL,
                "Flight-recorder frames appended.",
            )
            .inc();
        registry
            .counter(
                crate::names::RECORDER_BYTES_TOTAL,
                "Flight-recorder bytes written.",
            )
            .add(buf.len() as u64);
        Ok(seq)
    }
}

/// What [`read_recording`] recovered.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Recording {
    /// Intact frames, oldest first (stitched across segments).
    pub frames: Vec<Frame>,
    /// Segment files read.
    pub segments: u32,
    /// Bytes discarded as torn or corrupt (0 on a clean read).
    pub lost_bytes: u64,
    /// Whether a torn/corrupt tail (or bad header) was hit in any segment.
    pub rejected_tail: bool,
}

fn read_segment(path: &Path, recording: &mut Recording) -> io::Result<bool> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    recording.segments += 1;
    let total = file.metadata()?.len();
    let mut header = [0u8; 12];
    let version = if matches!(read_exact_or_eof(&mut file, &mut header), Ok(true)) {
        u32::from_le_bytes(header[8..12].try_into().unwrap())
    } else {
        0
    };
    if &header[..8] != MAGIC || !(MIN_VERSION..=VERSION).contains(&version) {
        recording.rejected_tail = true;
        recording.lost_bytes += total;
        return Ok(true);
    }
    let mut consumed = header.len() as u64;
    loop {
        let mut head = [0u8; 20];
        match read_exact_or_eof(&mut file, &mut head) {
            Ok(false) => break,
            Ok(true) => {}
            Err(_) => {
                recording.rejected_tail = true;
                break;
            }
        }
        let seq = u64::from_le_bytes(head[0..8].try_into().unwrap());
        let payload_len = u32::from_le_bytes(head[8..12].try_into().unwrap());
        let checksum = u64::from_le_bytes(head[12..20].try_into().unwrap());
        if payload_len > MAX_PAYLOAD {
            recording.rejected_tail = true;
            break;
        }
        let mut payload = vec![0u8; payload_len as usize];
        if !matches!(read_exact_or_eof(&mut file, &mut payload), Ok(true))
            || fnv1a(&payload) != checksum
        {
            recording.rejected_tail = true;
            break;
        }
        let Some(frame) = Frame::decode(seq, &payload, version) else {
            recording.rejected_tail = true;
            break;
        };
        consumed += (head.len() + payload.len()) as u64;
        recording.frames.push(frame);
    }
    recording.lost_bytes += total.saturating_sub(consumed);
    Ok(true)
}

fn read_exact_or_eof(file: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(ErrorKind::UnexpectedEof, "torn frame"))
                }
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Loads a recording: the rotated predecessor segment (if any) followed by
/// the live segment, torn tails dropped per segment. Errors only on a
/// missing live segment or an I/O failure; corruption is reported in the
/// returned [`Recording`], never fatal.
pub fn read_recording(path: impl AsRef<Path>) -> io::Result<Recording> {
    let path = path.as_ref();
    let mut recording = Recording::default();
    read_segment(&rotated_path(path), &mut recording)?;
    if !read_segment(path, &mut recording)? {
        return Err(io::Error::new(
            ErrorKind::NotFound,
            format!("no recording at {}", path.display()),
        ));
    }
    Ok(recording)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssflight-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("run.ssfr")
    }

    fn frame(expanded: u64) -> Frame {
        Frame {
            seq: 0,
            elapsed_micros: expanded * 10,
            expanded,
            generated: expanded * 7,
            open: 42,
            f_bound: Some(5),
            viability_pruned: 3,
            cut_pruned: 2,
            dedup_hits: 1,
            dead_write_pruned: 0,
            value_flow_pruned: 4,
            spilled_open: expanded / 3,
            spilled_closed: expanded / 5,
            ddd_dedup_hits: 6,
            resumed_frontier_states: 0,
            resident_bytes: expanded * 64,
            spilled_bytes: expanded * 16,
            distance_table_skipped: false,
            finished: false,
            outcome: None,
            shards: vec![
                ShardFrame {
                    interned_states: expanded,
                    arena_bytes: expanded * 100,
                    open_depth: 21,
                },
                ShardFrame {
                    interned_states: expanded / 2,
                    arena_bytes: expanded * 50,
                    open_depth: 21,
                },
            ],
        }
    }

    #[test]
    fn record_then_read_round_trips() {
        let path = tmp("rt");
        let rec = FlightRecorder::create(&path).unwrap();
        for i in 1..=3u64 {
            rec.record(&frame(i * 100)).unwrap();
        }
        let mut done = frame(400);
        done.finished = true;
        done.outcome = Some("Solved".into());
        rec.record(&done).unwrap();
        let recording = read_recording(&path).unwrap();
        assert_eq!(recording.frames.len(), 4);
        assert!(!recording.rejected_tail && recording.lost_bytes == 0);
        assert_eq!(recording.segments, 1);
        let last = recording.frames.last().unwrap();
        assert_eq!(last.seq, 3);
        assert!(last.finished);
        assert_eq!(last.outcome.as_deref(), Some("Solved"));
        assert_eq!(last.shards.len(), 2);
        assert_eq!(last.shards[0].arena_bytes, 40_000);
        assert_eq!(last.f_bound, Some(5));
        assert_eq!(last.spilled_open, 400 / 3);
        assert_eq!(last.resident_bytes, 400 * 64);
    }

    /// A v1 recording (written before the external-memory counters existed)
    /// must still read back cleanly, with the v2 fields zeroed.
    #[test]
    fn v1_recording_reads_with_zeroed_spill_fields() {
        let path = tmp("v1");
        // Hand-encode a v1 segment: v1 header + one frame whose payload is
        // the 10-field fixed block, flags, outcome, and one shard.
        let mut payload = Vec::new();
        for v in [10u64, 20, 30, 40, u64::MAX, 1, 2, 3, 4, 5] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.push(0b01); // finished
        let outcome = b"Solved";
        payload.push(outcome.len() as u8);
        payload.extend_from_slice(outcome);
        payload.extend_from_slice(&1u32.to_le_bytes());
        for v in [7u64, 700, 9] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // seq
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        fs::write(&path, &bytes).unwrap();
        let recording = read_recording(&path).unwrap();
        assert_eq!(recording.frames.len(), 1);
        assert!(!recording.rejected_tail && recording.lost_bytes == 0);
        let f = &recording.frames[0];
        assert_eq!(
            (f.elapsed_micros, f.expanded, f.generated, f.open),
            (10, 20, 30, 40)
        );
        assert_eq!(f.f_bound, None);
        assert_eq!(f.value_flow_pruned, 5);
        assert!(f.finished);
        assert_eq!(f.outcome.as_deref(), Some("Solved"));
        assert_eq!(f.shards.len(), 1);
        assert_eq!(f.shards[0].arena_bytes, 700);
        assert_eq!(
            (f.spilled_open, f.spilled_closed, f.ddd_dedup_hits),
            (0, 0, 0),
            "v1 frames decode with spill fields zeroed"
        );
        assert_eq!(
            (f.resumed_frontier_states, f.resident_bytes, f.spilled_bytes),
            (0, 0, 0)
        );
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let path = tmp("torn");
        let rec = FlightRecorder::create(&path).unwrap();
        rec.record(&frame(100)).unwrap();
        rec.record(&frame(200)).unwrap();
        drop(rec);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let recording = read_recording(&path).unwrap();
        assert_eq!(recording.frames.len(), 1);
        assert_eq!(recording.frames[0].expanded, 100);
        assert!(recording.rejected_tail);
        assert!(recording.lost_bytes > 0);
    }

    #[test]
    fn bit_flip_detected_by_checksum() {
        let path = tmp("flip");
        let rec = FlightRecorder::create(&path).unwrap();
        rec.record(&frame(100)).unwrap();
        drop(rec);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 9;
        bytes[at] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let recording = read_recording(&path).unwrap();
        assert!(recording.frames.is_empty());
        assert!(recording.rejected_tail);
    }

    #[test]
    fn rotation_bounds_the_recording_and_reader_stitches() {
        let path = tmp("rot");
        // Tiny budget: every few frames force a rotation.
        let rec = FlightRecorder::with_segment_bytes(&path, 256).unwrap();
        for i in 0..40u64 {
            rec.record(&frame(i)).unwrap();
        }
        assert!(rotated_path(&path).exists(), "rotation happened");
        let live = fs::metadata(&path).unwrap().len();
        let old = fs::metadata(rotated_path(&path)).unwrap().len();
        assert!(live + old < 40 * 200, "recording stayed bounded");
        let recording = read_recording(&path).unwrap();
        assert_eq!(recording.segments, 2);
        assert!(!recording.rejected_tail);
        // Stitched frames are consecutive and end at the last append.
        let seqs: Vec<u64> = recording.frames.iter().map(|f| f.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");
        assert_eq!(*seqs.last().unwrap(), 39);
        assert!(recording.frames.len() < 40, "old segments were dropped");
    }

    #[test]
    fn missing_recording_is_an_error() {
        let path = tmp("missing");
        assert!(read_recording(&path).is_err());
    }

    #[test]
    fn outcome_longer_than_255_bytes_is_truncated_not_fatal() {
        let path = tmp("long");
        let rec = FlightRecorder::create(&path).unwrap();
        let mut f = frame(1);
        f.outcome = Some("x".repeat(400));
        rec.record(&f).unwrap();
        let recording = read_recording(&path).unwrap();
        assert_eq!(
            recording.frames[0].outcome.as_deref(),
            Some(&"x".repeat(255)[..])
        );
    }
}
