//! Zero-dependency observability for the sortsynth runtime: a metrics
//! registry with Prometheus text exposition, a structured tracing facility,
//! and leveled logging macros.
//!
//! The container this project builds in has no crates.io access, so the
//! usual `tracing`/`prometheus` stack is rebuilt here from scratch (the same
//! way `sortsynth-sat` stands in for z3), scoped to exactly what the
//! synthesis runtime needs:
//!
//! * [`metrics`] — lock-free [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s held in a [`Registry`] keyed by metric name, rendered in
//!   the Prometheus text exposition format. A process-wide default registry
//!   ([`registry()`]) lets every crate publish without plumbing a handle.
//! * [`trace`] — structured [`Event`]s with span IDs, parent links, and
//!   monotonic timestamps, fanned out to pluggable [`Subscriber`]s. A
//!   bounded [`RingBuffer`] subscriber keeps the latest events for JSON
//!   drain; a [`FileSubscriber`] streams them to a JSON-lines log.
//! * [`log`](crate::Level) — `error!`/`warn!`/`info!`/`debug!`/`trace!`
//!   macros gated by a process-wide [`Level`], writing to stderr and (when a
//!   subscriber is installed) mirroring into the event stream.
//! * [`profile`] — an instrumented (sampling-free) phase profiler for the
//!   search hot loop: per-worker cache-line-padded [`PhaseProbe`]s attribute
//!   wall time to a fixed [`Phase`] taxonomy, off by default with one
//!   relaxed load per search when disabled.
//! * [`recorder`] — the flight recorder: a bounded, checksummed, crash-safe
//!   on-disk ring of search progress snapshots ([`FlightRecorder`]) with a
//!   torn-tail-tolerant reader ([`read_recording`]) for post-mortem
//!   analysis of long searches.
//! * [`segment`] — generic checksummed append-only record segments (the
//!   WAL discipline the cache store and flight recorder share), with both
//!   a tolerant reader (drop the torn tail) and a strict reader (any
//!   defect inside a recorded valid length is a hard error) — the search
//!   engine's external-memory spill tier builds on the strict flavor.
//!
//! Overhead is designed to vanish when nobody is watching: metric updates
//! are single relaxed atomic operations, span and event emission first check
//! one `AtomicBool` that is only set while the facility is
//! [enabled](set_enabled) *and* at least one subscriber is installed, and
//! progress emission in hot loops is throttled at the call site.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use sortsynth_obs as obs;
//!
//! // Metrics: register once, update lock-free.
//! let requests = obs::registry().counter("myapp_requests_total", "Requests served.");
//! requests.inc();
//! let text = obs::registry().render_prometheus();
//! assert!(text.contains("myapp_requests_total"));
//!
//! // Tracing: install a ring buffer, record a span, drain as JSON.
//! let ring = Arc::new(obs::RingBuffer::new(128));
//! let id = obs::add_subscriber(ring.clone());
//! {
//!     let span = obs::Span::root("work");
//!     span.event("step", &[("items", obs::FieldValue::U64(3))]);
//! }
//! obs::remove_subscriber(id);
//! let json = ring.drain_json();
//! assert!(json.contains("\"name\":\"work\""));
//! ```

mod level;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod recorder;
pub mod segment;
pub mod trace;

pub use level::{log_emit, log_enabled, log_level, set_log_level, Level};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use profile::{PaddedU64, Phase, PhaseProbe, PHASE_COUNT};
pub use recorder::{read_recording, FlightRecorder, Frame, Recording, ShardFrame};
pub use trace::{
    add_subscriber, emit, enabled, now_micros, remove_subscriber, set_enabled, Event, EventKind,
    FieldValue, FileSubscriber, RingBuffer, Span, Subscriber,
};

/// Logs at an explicit [`Level`]. The message is formatted lazily: when the
/// level is filtered out nothing is formatted or emitted.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $($arg:tt)*) => {{
        let lvl = $lvl;
        if $crate::log_enabled(lvl) {
            $crate::log_emit(lvl, module_path!(), &format!($($arg)*));
        }
    }};
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Error, $($arg)*) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Warn, $($arg)*) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Info, $($arg)*) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Debug, $($arg)*) };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::log!($crate::Level::Trace, $($arg)*) };
}
