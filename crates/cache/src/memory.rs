//! The sharded in-memory LRU front.
//!
//! Lookups take a shard's read lock only: recency is an `AtomicU64` stamped
//! from a global clock, so concurrent readers never serialize on the hot
//! path. Inserts take the write lock of exactly one shard and evict that
//! shard's least-recently-used slot when full. Eviction is per-shard (and
//! therefore approximate globally), the standard cache trade-off.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::entry::CacheEntry;

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: AtomicU64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Slot>,
}

/// A fixed-capacity, sharded, approximately-LRU map from query fingerprint
/// to cache entry.
pub struct ShardedLru {
    shards: Vec<RwLock<Shard>>,
    clock: AtomicU64,
    evictions: AtomicU64,
    per_shard_cap: usize,
}

/// Number of shards. A power of two so shard selection is a mask; 16 is
/// plenty of write-parallelism for a worker pool of typical size.
const SHARDS: usize = 16;

impl ShardedLru {
    /// Creates a front holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard_cap = capacity.div_ceil(SHARDS).max(1);
        ShardedLru {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            clock: AtomicU64::new(1),
            evictions: AtomicU64::new(0),
            per_shard_cap,
        }
    }

    fn shard(&self, fingerprint: u64) -> &RwLock<Shard> {
        // Fingerprints are FNV outputs; fold the high bits in so shard
        // selection doesn't depend only on the low nibble.
        let idx = ((fingerprint >> 32) ^ fingerprint) as usize & (SHARDS - 1);
        &self.shards[idx]
    }

    /// Looks up a fingerprint, stamping recency.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<CacheEntry>> {
        let shard = self.shard(fingerprint).read();
        let slot = shard.map.get(&fingerprint)?;
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(now, Ordering::Relaxed);
        Some(Arc::clone(&slot.entry))
    }

    /// Inserts (or replaces) an entry, evicting the shard's LRU slot if the
    /// shard is full.
    pub fn insert(&self, entry: Arc<CacheEntry>) {
        let fingerprint = entry.fingerprint();
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(fingerprint).write();
        if !shard.map.contains_key(&fingerprint) && shard.map.len() >= self.per_shard_cap {
            if let Some((&victim, _)) = shard
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            fingerprint,
            Slot {
                entry,
                last_used: AtomicU64::new(now),
            },
        );
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries evicted since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::KernelQuery;
    use sortsynth_isa::{IsaMode, Machine};

    fn entry(n: u8, scratch: u8) -> Arc<CacheEntry> {
        let machine = Machine::new(n, scratch, IsaMode::Cmov);
        Arc::new(CacheEntry {
            query: KernelQuery::best(n, scratch, IsaMode::Cmov),
            program: machine.parse_program("mov s1 r1").unwrap(),
            minimal_certified: false,
            search_millis: 0,
            gate_checksum: None,
        })
    }

    #[test]
    fn get_after_insert() {
        let lru = ShardedLru::new(8);
        let e = entry(3, 1);
        let fp = e.fingerprint();
        assert!(lru.get(fp).is_none());
        lru.insert(Arc::clone(&e));
        assert_eq!(lru.get(fp).as_deref(), Some(&*e));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        // Capacity 16 → one slot per shard; two entries in the same shard
        // force an eviction of whichever was touched least recently.
        let lru = ShardedLru::new(1);
        let mut by_shard: HashMap<usize, Vec<Arc<CacheEntry>>> = HashMap::new();
        for n in 2..=9u8 {
            for scratch in 1..=4u8 {
                if n + scratch > 13 {
                    continue;
                }
                let e = entry(n, scratch);
                let idx = ((e.fingerprint() >> 32) ^ e.fingerprint()) as usize & (SHARDS - 1);
                by_shard.entry(idx).or_default().push(e);
            }
        }
        let (_, same_shard) = by_shard
            .into_iter()
            .find(|(_, v)| v.len() >= 2)
            .expect("some shard holds two queries");
        let (a, b) = (&same_shard[0], &same_shard[1]);
        lru.insert(Arc::clone(a));
        lru.insert(Arc::clone(b));
        assert_eq!(lru.evictions(), 1);
        assert!(lru.get(a.fingerprint()).is_none(), "older entry evicted");
        assert!(lru.get(b.fingerprint()).is_some());
    }
}
