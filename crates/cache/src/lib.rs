//! Persistent, content-addressed kernel cache.
//!
//! Synthesizing a sorting kernel is expensive (seconds to hours as `n`
//! grows) while the result is tiny (tens of instructions), which makes the
//! synthesis service's workload ideal for a durable cache. This crate
//! provides:
//!
//! * [`KernelQuery`] — the canonical form of a synthesis request, with a
//!   64-bit content [fingerprint](KernelQuery::fingerprint) covering exactly
//!   the inputs that determine the answer (ISA, `n`, scratch count, length
//!   bound, and the non-optimality-preserving search toggles);
//! * [`CacheEntry`] — a solved query with its kernel and provenance;
//! * [`KernelCache`] — a sharded in-memory LRU front over an append-friendly
//!   on-disk log with per-entry checksums, crash-tolerant recovery, and
//!   atomic write-then-rename compaction (see [`disk`] for the format).
//!
//! Every kernel passes the static-verification gate
//! ([`sortsynth_verify::gate`]) before it can enter the cache: inserts,
//! recovery on open, and disk-scan promotions all refuse programs that are
//! malformed for their query's machine or refuted on a 0-1 input. The gate
//! never rejects a correct kernel (the 0-1 check is necessary for
//! correctness on both ISAs), so a cache that only ever held genuine
//! synthesis results behaves identically — the gate exists to stop a
//! corrupted or hand-edited store from serving wrong kernels forever.
//!
//! ```
//! use sortsynth_cache::{CacheEntry, KernelCache, KernelQuery};
//! use sortsynth_isa::{IsaMode, Machine};
//!
//! let cache = KernelCache::in_memory(64);
//! let query = KernelQuery::best(2, 1, IsaMode::Cmov);
//! assert!(cache.get(&query).is_none());
//!
//! let machine = Machine::new(2, 1, IsaMode::Cmov);
//! let program = machine
//!     .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
//!     .unwrap();
//! cache
//!     .insert(CacheEntry { query: query.clone(), program, minimal_certified: true, search_millis: 5, gate_checksum: None })
//!     .unwrap();
//! assert_eq!(cache.get(&query).unwrap().program.len(), 4);
//! ```

pub mod disk;
mod entry;
mod memory;
mod query;

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sortsynth_obs::names;

pub use disk::{LoadReport, LOG_FILE, VERSION};
pub use entry::CacheEntry;
pub use memory::ShardedLru;
pub use query::{fnv1a, CutSpec, KernelQuery};

/// Counters describing cache behaviour since open.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the in-memory front.
    pub memory_hits: u64,
    /// Lookups answered by scanning the disk log after a memory miss.
    pub disk_hits: u64,
    /// Lookups answered by neither.
    pub misses: u64,
    /// Entries inserted since open.
    pub insertions: u64,
    /// Entries evicted from the memory front (still on disk).
    pub evictions: u64,
    /// Entries refused by the static-verification gate since open
    /// (rejected inserts plus disk hits that failed re-verification).
    /// Open-time rejections are reported separately in
    /// [`LoadReport::verify_rejected`].
    pub verify_rejected: u64,
    /// Disk-hit promotions that skipped gate re-analysis because the record
    /// round-tripped with a valid gate stamp. Open-time skips are reported
    /// separately in [`LoadReport::verify_skipped`].
    pub verify_skipped: u64,
    /// What recovery found when the store was opened.
    pub load: LoadReport,
}

#[derive(Default)]
struct Counters {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    verify_rejected: AtomicU64,
    verify_skipped: AtomicU64,
}

/// Mirrors one cache counter increment into the process-wide metrics
/// registry (so `sortsynth serve` exposes live cache efficacy without
/// polling [`KernelCache::stats`]).
fn obs_inc(name: &str, help: &str) {
    sortsynth_obs::registry().counter(name, help).inc();
}

/// Why the static-verification gate refused an entry.
fn gate_error(entry: &CacheEntry) -> Option<String> {
    if !entry.query.is_valid() {
        return Some(format!(
            "query n={} scratch={} out of range",
            entry.query.n, entry.query.scratch
        ));
    }
    sortsynth_verify::gate(&entry.query.machine(), &entry.program)
        .err()
        .map(|e| e.to_string())
}

struct DiskStore {
    dir: PathBuf,
    /// Append handle, serialized so concurrent inserts can't interleave
    /// frames.
    file: Mutex<File>,
}

/// The kernel cache: LRU front, optional durable log behind it.
pub struct KernelCache {
    lru: ShardedLru,
    store: Option<DiskStore>,
    counters: Counters,
    load: LoadReport,
}

impl KernelCache {
    /// A purely in-memory cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> Self {
        KernelCache {
            lru: ShardedLru::new(capacity),
            store: None,
            counters: Counters::default(),
            load: LoadReport::default(),
        }
    }

    /// Opens (creating if needed) the durable cache in `dir`, recovering
    /// every intact entry into the memory front.
    ///
    /// If recovery rejected a corrupt or torn tail, the log is immediately
    /// compacted (atomic write-then-rename) so the corruption cannot be
    /// consulted again and subsequent appends don't extend a bad tail.
    /// Intact frames whose kernels fail the static-verification gate are
    /// dropped the same way (counted in [`LoadReport::verify_rejected`]).
    pub fn open(dir: impl AsRef<Path>, capacity: usize) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (mut entries, mut load) = disk::load(&dir)?;
        let intact = entries.len();
        // A record whose gate stamp round-trips intact has already passed
        // this gate version for these exact bytes — the frame checksum rules
        // out torn writes and the stamp rules out hand edits, so re-running
        // the analysis would only reproduce the recorded verdict.
        let mut skipped = 0u64;
        entries.retain(|e| {
            if e.gate_stamp_valid() {
                skipped += 1;
                return true;
            }
            gate_error(e).is_none()
        });
        load.verify_rejected = (intact - entries.len()) as u64;
        load.verify_skipped = skipped;
        if skipped > 0 {
            sortsynth_obs::registry()
                .counter(
                    names::VERIFY_GATE_SKIPPED_TOTAL,
                    "Gate re-analyses skipped via a valid gate stamp.",
                )
                .add(skipped);
        }
        if load.rejected_tail || load.verify_rejected > 0 {
            disk::rewrite_atomic(&dir, entries.iter())?;
        }
        let lru = ShardedLru::new(capacity);
        for entry in entries {
            lru.insert(Arc::new(entry));
        }
        let file = disk::open_for_append(&dir)?;
        Ok(KernelCache {
            lru,
            store: Some(DiskStore {
                dir,
                file: Mutex::new(file),
            }),
            counters: Counters::default(),
            load,
        })
    }

    /// Looks up a query: memory front first, then (on miss, for durable
    /// caches whose front may have evicted) a disk scan. Disk hits are
    /// promoted back into the front. Fingerprint collisions are ruled out by
    /// comparing the stored query for equality.
    pub fn get(&self, query: &KernelQuery) -> Option<Arc<CacheEntry>> {
        let fingerprint = query.fingerprint();
        if let Some(entry) = self.lru.get(fingerprint) {
            if entry.query == *query {
                self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
                obs_inc(names::CACHE_MEMORY_HITS_TOTAL, "In-memory cache hits.");
                return Some(entry);
            }
        }
        if let Some(store) = &self.store {
            // Hold the append lock while scanning so a concurrent insert
            // can't be half-written under the reader.
            let _guard = store.file.lock();
            let scan_start = std::time::Instant::now();
            let scanned = disk::load(&store.dir);
            names::cache_disk_promotion_seconds().observe_duration(scan_start.elapsed());
            if let Ok((entries, _)) = scanned {
                // Latest write wins: scan from the back.
                if let Some(entry) = entries.into_iter().rev().find(|e| e.query == *query) {
                    // Re-verify before promotion: the log may have been
                    // modified behind the append handle. A record whose gate
                    // stamp still matches its bytes needs no re-analysis.
                    let stamped = entry.gate_stamp_valid();
                    if stamped {
                        self.counters.verify_skipped.fetch_add(1, Ordering::Relaxed);
                        obs_inc(
                            names::VERIFY_GATE_SKIPPED_TOTAL,
                            "Gate re-analyses skipped via a valid gate stamp.",
                        );
                    }
                    if stamped || gate_error(&entry).is_none() {
                        let entry = Arc::new(entry);
                        let evicted_before = self.lru.evictions();
                        self.lru.insert(Arc::clone(&entry));
                        self.note_evictions(evicted_before);
                        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                        obs_inc(
                            names::CACHE_DISK_HITS_TOTAL,
                            "Disk-log hits promoted into memory.",
                        );
                        return Some(entry);
                    }
                    self.counters
                        .verify_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    obs_inc(
                        names::CACHE_VERIFY_REJECTED_TOTAL,
                        "Disk entries rejected by the verification gate.",
                    );
                }
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        obs_inc(
            names::CACHE_MISSES_TOTAL,
            "Lookups that missed both cache tiers.",
        );
        None
    }

    /// Publishes LRU evictions that happened since `before` to the metrics
    /// registry (the local total lives in [`ShardedLru`] itself).
    fn note_evictions(&self, before: u64) {
        let evicted = self.lru.evictions() - before;
        if evicted > 0 {
            sortsynth_obs::registry()
                .counter(
                    names::CACHE_EVICTIONS_TOTAL,
                    "Entries evicted from the in-memory LRU.",
                )
                .add(evicted);
        }
    }

    /// Inserts an entry: appended to the log (durable caches) and published
    /// to the memory front. The entry is visible to other threads' `get` as
    /// soon as this returns.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] (without touching the log)
    /// when the kernel fails the static-verification gate: malformed for
    /// the query's machine, or refuted by a 0-1 input.
    pub fn insert(&self, mut entry: CacheEntry) -> io::Result<()> {
        // Inserts always run the gate — a caller-provided stamp is never
        // trusted as proof; only this cache stamps what it verified itself.
        if let Some(why) = gate_error(&entry) {
            self.counters
                .verify_rejected
                .fetch_add(1, Ordering::Relaxed);
            obs_inc(
                names::CACHE_VERIFY_REJECTED_TOTAL,
                "Disk entries rejected by the verification gate.",
            );
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("kernel refused by verification gate: {why}"),
            ));
        }
        entry.stamp_gate();
        let entry = Arc::new(entry);
        if let Some(store) = &self.store {
            let mut file = store.file.lock();
            disk::append(&mut file, &entry)?;
        }
        let evicted_before = self.lru.evictions();
        self.lru.insert(entry);
        self.note_evictions(evicted_before);
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        obs_inc(names::CACHE_INSERTIONS_TOTAL, "Cache entries inserted.");
        Ok(())
    }

    /// Rewrites the log atomically, deduplicating by fingerprint (latest
    /// entry wins). No-op for in-memory caches.
    pub fn compact(&self) -> io::Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        let mut file = store.file.lock();
        let (entries, _) = disk::load(&store.dir)?;
        let mut deduped: Vec<CacheEntry> = Vec::new();
        for entry in entries {
            if let Some(slot) = deduped
                .iter_mut()
                .find(|e| e.fingerprint() == entry.fingerprint())
            {
                *slot = entry;
            } else {
                deduped.push(entry);
            }
        }
        disk::rewrite_atomic(&store.dir, deduped.iter())?;
        *file = disk::open_for_append(&store.dir)?;
        Ok(())
    }

    /// Entries resident in the memory front.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the memory front is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Behaviour counters since open.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.counters.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.lru.evictions(),
            verify_rejected: self.counters.verify_rejected.load(Ordering::Relaxed),
            verify_skipped: self.counters.verify_skipped.load(Ordering::Relaxed),
            load: self.load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{IsaMode, Machine};

    /// A correct (bubble-network, not minimal) kernel for each `n`, so test
    /// entries pass the verification gate.
    fn entry(n: u8) -> CacheEntry {
        let machine = Machine::new(n, 1, IsaMode::Cmov);
        let mut blocks = Vec::new();
        for pass in 0..n - 1 {
            for u in 1..n - pass {
                let v = u + 1;
                blocks.push(format!(
                    "mov s1 r{u}; cmp r{u} r{v}; cmovg r{u} r{v}; cmovg r{v} s1"
                ));
            }
        }
        CacheEntry {
            query: KernelQuery::best(n, 1, IsaMode::Cmov),
            program: machine.parse_program(&blocks.join("; ")).unwrap(),
            minimal_certified: false,
            search_millis: 3,
            gate_checksum: None,
        }
    }

    /// An entry whose kernel does not sort (refuted by the 0-1 gate).
    fn bogus_entry(n: u8) -> CacheEntry {
        let machine = Machine::new(n, 1, IsaMode::Cmov);
        CacheEntry {
            query: KernelQuery::best(n, 1, IsaMode::Cmov),
            program: machine.parse_program("mov s1 r1; mov r1 r2").unwrap(),
            minimal_certified: false,
            search_millis: 3,
            gate_checksum: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sskc-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_hit_miss_counters() {
        let cache = KernelCache::in_memory(8);
        let e = entry(3);
        assert!(cache.get(&e.query).is_none());
        cache.insert(e.clone()).unwrap();
        assert!(cache.get(&e.query).is_some());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn durable_cache_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let cache = KernelCache::open(&dir, 8).unwrap();
            cache.insert(entry(2)).unwrap();
            cache.insert(entry(3)).unwrap();
        }
        let cache = KernelCache::open(&dir, 8).unwrap();
        assert_eq!(cache.stats().load.loaded, 2);
        assert_eq!(cache.get(&entry(2).query).unwrap().program.len(), 4);
        assert!(cache.get(&entry(3).query).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn insert_refuses_kernels_that_fail_the_gate() {
        let cache = KernelCache::in_memory(8);
        let bogus = bogus_entry(2);
        let err = cache.insert(bogus.clone()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(cache.get(&bogus.query).is_none());
        let stats = cache.stats();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.verify_rejected, 1);
    }

    #[test]
    fn recovery_drops_refuted_entries_and_repairs_the_log() {
        let dir = tmp_dir("gate");
        {
            let cache = KernelCache::open(&dir, 8).unwrap();
            cache.insert(entry(2)).unwrap();
        }
        // Smuggle a refuted kernel past the gate by appending at the disk
        // layer directly (as a corrupted or hand-edited store would).
        {
            let mut file = disk::open_for_append(&dir).unwrap();
            disk::append(&mut file, &bogus_entry(3)).unwrap();
        }
        let cache = KernelCache::open(&dir, 8).unwrap();
        let load = cache.stats().load;
        assert_eq!(load.loaded, 2, "both frames were intact on disk");
        assert_eq!(load.verify_rejected, 1);
        assert!(cache.get(&entry(2).query).is_some());
        assert!(cache.get(&bogus_entry(3).query).is_none());
        drop(cache);
        // The rejected frame was compacted away, so the next open is clean.
        let reopened = KernelCache::open(&dir, 8).unwrap();
        assert_eq!(reopened.stats().load.loaded, 1);
        assert_eq!(reopened.stats().load.verify_rejected, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evicted_entries_still_served_from_disk() {
        let dir = tmp_dir("evict");
        // Capacity 1 → per-shard capacity 1; entries landing in the same
        // shard evict each other, but the log keeps both.
        let cache = KernelCache::open(&dir, 1).unwrap();
        for n in 2..=9u8 {
            cache.insert(entry(n)).unwrap();
        }
        for n in 2..=9u8 {
            assert!(cache.get(&entry(n).query).is_some(), "n = {n}");
        }
        let stats = cache.stats();
        assert_eq!(stats.memory_hits + stats.disk_hits, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_dedups_and_preserves() {
        let dir = tmp_dir("compact");
        let cache = KernelCache::open(&dir, 8).unwrap();
        cache.insert(entry(2)).unwrap();
        cache.insert(entry(3)).unwrap();
        let mut updated = entry(2);
        updated.search_millis = 99;
        cache.insert(updated.clone()).unwrap();
        cache.compact().unwrap();
        // Post-compaction appends still work.
        cache.insert(entry(4)).unwrap();
        drop(cache);
        let reopened = KernelCache::open(&dir, 8).unwrap();
        assert_eq!(reopened.stats().load.loaded, 3);
        assert_eq!(reopened.get(&updated.query).unwrap().search_millis, 99);
        assert!(reopened.get(&entry(4).query).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
