//! Canonical kernel queries and their content-addressing fingerprint.

use serde::{Deserialize, Error, Serialize, Value};
use sortsynth_isa::{IsaMode, Machine};

/// Largest register file the packed machine state supports (mirrors
/// `sortsynth_isa::state::MAX_REGS`, which is not exported).
const MAX_REGS: u16 = 15;

/// A search cut, in a hashable/serializable form.
///
/// The engine's `Cut::Factor` carries an `f64`; queries store the factor in
/// thousandths so that [`KernelQuery`] is `Eq + Hash` and fingerprints are
/// bit-stable across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutSpec {
    /// Keep states with `perm_count ≤ (millis/1000) · min_prev`.
    Factor {
        /// The factor in thousandths (`1000` = the paper's `k = 1` cut).
        millis: u32,
    },
    /// Keep states with `perm_count ≤ min_prev + add`.
    Additive {
        /// The additive slack.
        add: u32,
    },
}

impl CutSpec {
    fn canonical(&self) -> String {
        match self {
            CutSpec::Factor { millis } => format!("f{millis}"),
            CutSpec::Additive { add } => format!("a{add}"),
        }
    }
}

/// The canonical form of one synthesis request: everything that determines
/// the answer, and nothing that doesn't.
///
/// Two requests with equal queries are interchangeable — same machine, same
/// length bound, same search toggles that can change *which* kernel comes
/// back (cuts and the optimal-instruction restriction are not
/// optimality-preserving in principle, so they are part of the key).
/// Deliberately excluded: node/time limits, thread counts, progress
/// sampling — those change whether/how fast an answer arrives, not what it
/// is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelQuery {
    /// Number of values to sort (`2..=14`).
    pub n: u8,
    /// Scratch registers (`n + scratch ≤ 15`).
    pub scratch: u8,
    /// Which ISA to synthesize for.
    pub mode: IsaMode,
    /// Inclusive maximum program length, if bounded.
    pub max_len: Option<u32>,
    /// §3.2 optimal-first-instruction restriction.
    pub optimal_instrs_only: bool,
    /// §3.3 per-assignment remaining-budget viability check.
    pub budget_viability: bool,
    /// §3.5 cut, if any.
    pub cut: Option<CutSpec>,
}

impl KernelQuery {
    /// A query for the paper's best configuration "(III)" — mirrors
    /// `SynthesisConfig::best`.
    pub fn best(n: u8, scratch: u8, mode: IsaMode) -> Self {
        KernelQuery {
            n,
            scratch,
            mode,
            max_len: None,
            optimal_instrs_only: true,
            budget_viability: true,
            cut: Some(CutSpec::Factor { millis: 1000 }),
        }
    }

    /// Whether the machine parameters are representable (`2 ≤ n ≤ 14`,
    /// `n + scratch ≤ 15`). Invalid queries are rejected at deserialization
    /// and by [`Self::machine`].
    pub fn is_valid(&self) -> bool {
        (2..=14).contains(&self.n) && (self.n as u16 + self.scratch as u16) <= MAX_REGS
    }

    /// The machine this query asks about.
    ///
    /// # Panics
    ///
    /// Panics if `!self.is_valid()`.
    pub fn machine(&self) -> Machine {
        Machine::new(self.n, self.scratch, self.mode)
    }

    /// The canonical string the fingerprint hashes. Versioned: any change to
    /// the encoding must bump the leading tag, which invalidates every old
    /// fingerprint (and with it, old cache entries).
    pub fn canonical_string(&self) -> String {
        let cut = self.cut.map_or_else(|| "-".to_string(), |c| c.canonical());
        let max_len = self
            .max_len
            .map_or_else(|| "-".to_string(), |l| l.to_string());
        format!(
            "kq1|{}|{}|{}|{}|{}|{}|{}",
            self.mode.wire_name(),
            self.n,
            self.scratch,
            max_len,
            u8::from(self.optimal_instrs_only),
            u8::from(self.budget_viability),
            cut,
        )
    }

    /// The 64-bit content fingerprint: FNV-1a over
    /// [`Self::canonical_string`]. This is the cache key, the single-flight
    /// key, and the on-disk index key.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical_string().as_bytes())
    }
}

/// FNV-1a 64-bit — the workspace-standard checksum/fingerprint hash (no
/// external hashing crates are available; see `vendor/README.md`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Serialize for CutSpec {
    fn serialize(&self) -> Value {
        match self {
            CutSpec::Factor { millis } => Value::map([
                ("kind", Value::Str("factor".into())),
                ("millis", millis.serialize()),
            ]),
            CutSpec::Additive { add } => Value::map([
                ("kind", Value::Str("additive".into())),
                ("add", add.serialize()),
            ]),
        }
    }
}

impl Deserialize for CutSpec {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let kind = String::deserialize(value.required("kind")?)?;
        match kind.as_str() {
            "factor" => Ok(CutSpec::Factor {
                millis: u32::deserialize(value.required("millis")?)?,
            }),
            "additive" => Ok(CutSpec::Additive {
                add: u32::deserialize(value.required("add")?)?,
            }),
            other => Err(Error::new(format!("unknown cut kind `{other}`"))),
        }
    }
}

impl Serialize for KernelQuery {
    fn serialize(&self) -> Value {
        Value::map([
            ("n", self.n.serialize()),
            ("scratch", self.scratch.serialize()),
            ("mode", self.mode.serialize()),
            ("max_len", self.max_len.serialize()),
            ("optimal_instrs_only", self.optimal_instrs_only.serialize()),
            ("budget_viability", self.budget_viability.serialize()),
            ("cut", self.cut.serialize()),
        ])
    }
}

impl Deserialize for KernelQuery {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let query = KernelQuery {
            n: u8::deserialize(value.required("n")?)?,
            scratch: u8::deserialize(value.required("scratch")?)?,
            mode: IsaMode::deserialize(value.required("mode")?)?,
            max_len: Option::<u32>::deserialize(value.required("max_len")?)?,
            optimal_instrs_only: bool::deserialize(value.required("optimal_instrs_only")?)?,
            budget_viability: bool::deserialize(value.required("budget_viability")?)?,
            cut: Option::<CutSpec>::deserialize(value.required("cut")?)?,
        };
        if !query.is_valid() {
            return Err(Error::new(format!(
                "query n={} scratch={} out of range",
                query.n, query.scratch
            )));
        }
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::{from_str, to_string};

    fn sample() -> KernelQuery {
        KernelQuery::best(3, 1, IsaMode::Cmov)
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let q = sample();
        assert_eq!(q.fingerprint(), q.clone().fingerprint());
        let mut other = sample();
        other.scratch = 2;
        assert_ne!(q.fingerprint(), other.fingerprint());
        let mut uncut = sample();
        uncut.cut = None;
        assert_ne!(q.fingerprint(), uncut.fingerprint());
        let minmax = KernelQuery::best(3, 1, IsaMode::MinMax);
        assert_ne!(q.fingerprint(), minmax.fingerprint());
    }

    #[test]
    fn canonical_string_versioned() {
        assert!(sample().canonical_string().starts_with("kq1|"));
    }

    #[test]
    fn serde_round_trip() {
        for q in [
            sample(),
            KernelQuery {
                max_len: Some(11),
                cut: Some(CutSpec::Additive { add: 2 }),
                ..sample()
            },
            KernelQuery {
                optimal_instrs_only: false,
                budget_viability: false,
                cut: None,
                ..KernelQuery::best(4, 2, IsaMode::MinMax)
            },
        ] {
            let json = to_string(&q).unwrap();
            let back: KernelQuery = from_str(&json).unwrap();
            assert_eq!(q, back);
            assert_eq!(q.fingerprint(), back.fingerprint());
        }
    }

    #[test]
    fn invalid_queries_rejected() {
        let mut q = sample();
        q.n = 1;
        let json = to_string(&q).unwrap();
        assert!(from_str::<KernelQuery>(&json).is_err());
        q.n = 14;
        q.scratch = 5;
        let json = to_string(&q).unwrap();
        assert!(from_str::<KernelQuery>(&json).is_err());
    }
}
