//! Cache entries: a solved query together with its kernel and provenance.

use serde::{Deserialize, Error, Serialize, Value};
use sortsynth_isa::Program;

use crate::query::KernelQuery;

/// One cached synthesis result.
///
/// The entry stores the query it answers (fingerprints are 64-bit, so
/// lookups verify full query equality rather than trusting the hash), the
/// kernel itself, and enough provenance to answer "can I trust this length
/// is minimal" and "what did this cost to compute" without re-running the
/// search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The query this entry answers.
    pub query: KernelQuery,
    /// The synthesized kernel.
    pub program: Program,
    /// Whether the producing configuration certifies the length as minimal.
    pub minimal_certified: bool,
    /// Wall-clock milliseconds the original search took.
    pub search_millis: u64,
}

impl CacheEntry {
    /// The content fingerprint this entry is stored under.
    pub fn fingerprint(&self) -> u64 {
        self.query.fingerprint()
    }

    /// Serializes to the canonical JSON payload stored on disk.
    pub fn to_payload(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("value-tree serialization is infallible")
    }

    /// Parses a disk payload back into an entry, validating the query.
    pub fn from_payload(bytes: &[u8]) -> Result<Self, Error> {
        serde_json::from_slice(bytes)
    }
}

impl Serialize for CacheEntry {
    fn serialize(&self) -> Value {
        Value::map([
            ("query", self.query.serialize()),
            ("program", self.program.serialize()),
            ("minimal_certified", self.minimal_certified.serialize()),
            ("search_millis", self.search_millis.serialize()),
        ])
    }
}

impl Deserialize for CacheEntry {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(CacheEntry {
            query: KernelQuery::deserialize(value.required("query")?)?,
            program: Program::deserialize(value.required("program")?)?,
            minimal_certified: bool::deserialize(value.required("minimal_certified")?)?,
            search_millis: u64::deserialize(value.required("search_millis")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{IsaMode, Machine};

    pub(crate) fn sample_entry() -> CacheEntry {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let program = machine
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap();
        CacheEntry {
            query: KernelQuery::best(2, 1, IsaMode::Cmov),
            program,
            minimal_certified: true,
            search_millis: 7,
        }
    }

    #[test]
    fn payload_round_trip() {
        let entry = sample_entry();
        let payload = entry.to_payload();
        let back = CacheEntry::from_payload(&payload).unwrap();
        assert_eq!(entry, back);
        // Canonical (BTreeMap-ordered) JSON: re-encoding is byte-identical.
        assert_eq!(payload, back.to_payload());
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut payload = sample_entry().to_payload();
        payload.truncate(payload.len() / 2);
        assert!(CacheEntry::from_payload(&payload).is_err());
    }
}
