//! Cache entries: a solved query together with its kernel and provenance.

use serde::{Deserialize, Error, Serialize, Value};
use sortsynth_isa::Program;

use crate::query::{fnv1a, KernelQuery};

/// One cached synthesis result.
///
/// The entry stores the query it answers (fingerprints are 64-bit, so
/// lookups verify full query equality rather than trusting the hash), the
/// kernel itself, and enough provenance to answer "can I trust this length
/// is minimal" and "what did this cost to compute" without re-running the
/// search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The query this entry answers.
    pub query: KernelQuery,
    /// The synthesized kernel.
    pub program: Program,
    /// Whether the producing configuration certifies the length as minimal.
    pub minimal_certified: bool,
    /// Wall-clock milliseconds the original search took.
    pub search_millis: u64,
    /// Proof-of-verification stamp: the [`Self::expected_gate_checksum`]
    /// value recorded when this entry last passed the static-verification
    /// gate, or `None` for unstamped (pre-stamp or externally produced)
    /// records. A record that round-trips with a valid stamp skips gate
    /// re-analysis on recovery and disk promotion; any change to the query,
    /// the program bytes, or the gate's decision procedure invalidates it.
    pub gate_checksum: Option<u64>,
}

impl CacheEntry {
    /// The content fingerprint this entry is stored under.
    pub fn fingerprint(&self) -> u64 {
        self.query.fingerprint()
    }

    /// The gate stamp this entry *should* carry: FNV-1a over the gate
    /// version, the query fingerprint, and every instruction's operation and
    /// operands. Covers exactly the inputs of [`sortsynth_verify::gate`], so
    /// a matching stamp means this byte-identical program already passed
    /// this very gate for this very query.
    pub fn expected_gate_checksum(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 + 3 * self.program.len());
        bytes.extend_from_slice(b"gate");
        bytes.extend_from_slice(&sortsynth_verify::GATE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&self.query.fingerprint().to_le_bytes());
        for instr in &self.program {
            bytes.push(instr.op as u8);
            bytes.push(instr.dst.index());
            bytes.push(instr.src.index());
        }
        fnv1a(&bytes)
    }

    /// Whether the stamp is present and matches the record's content.
    pub fn gate_stamp_valid(&self) -> bool {
        self.gate_checksum == Some(self.expected_gate_checksum())
    }

    /// Stamps the entry as gate-verified. Callers must only do this after a
    /// successful [`sortsynth_verify::gate`] run.
    pub(crate) fn stamp_gate(&mut self) {
        self.gate_checksum = Some(self.expected_gate_checksum());
    }

    /// Serializes to the canonical JSON payload stored on disk.
    pub fn to_payload(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("value-tree serialization is infallible")
    }

    /// Parses a disk payload back into an entry, validating the query.
    pub fn from_payload(bytes: &[u8]) -> Result<Self, Error> {
        serde_json::from_slice(bytes)
    }
}

impl Serialize for CacheEntry {
    fn serialize(&self) -> Value {
        // The stamp is serialized as a hex string: a full 64-bit hash does
        // not survive a JSON-number (f64) round trip.
        Value::map([
            ("query", self.query.serialize()),
            ("program", self.program.serialize()),
            ("minimal_certified", self.minimal_certified.serialize()),
            ("search_millis", self.search_millis.serialize()),
            (
                "gate_checksum",
                match self.gate_checksum {
                    Some(sum) => Value::Str(format!("{sum:016x}")),
                    None => Value::Null,
                },
            ),
        ])
    }
}

impl Deserialize for CacheEntry {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        // Missing key (pre-stamp stores) and explicit null both mean
        // "unstamped"; an unparsable stamp is likewise treated as absent
        // rather than an error — the entry merely loses its skip.
        let gate_checksum = match value.get("gate_checksum") {
            Some(Value::Str(hex)) => u64::from_str_radix(hex, 16).ok(),
            _ => None,
        };
        Ok(CacheEntry {
            query: KernelQuery::deserialize(value.required("query")?)?,
            program: Program::deserialize(value.required("program")?)?,
            minimal_certified: bool::deserialize(value.required("minimal_certified")?)?,
            search_millis: u64::deserialize(value.required("search_millis")?)?,
            gate_checksum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{IsaMode, Machine};

    pub(crate) fn sample_entry() -> CacheEntry {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let program = machine
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap();
        CacheEntry {
            query: KernelQuery::best(2, 1, IsaMode::Cmov),
            program,
            minimal_certified: true,
            search_millis: 7,
            gate_checksum: None,
        }
    }

    #[test]
    fn payload_round_trip() {
        let entry = sample_entry();
        let payload = entry.to_payload();
        let back = CacheEntry::from_payload(&payload).unwrap();
        assert_eq!(entry, back);
        // Canonical (BTreeMap-ordered) JSON: re-encoding is byte-identical.
        assert_eq!(payload, back.to_payload());
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut payload = sample_entry().to_payload();
        payload.truncate(payload.len() / 2);
        assert!(CacheEntry::from_payload(&payload).is_err());
    }
}
