//! The on-disk kernel log: an append-friendly sequence of checksummed,
//! self-delimiting entries behind a versioned header.
//!
//! # Format
//!
//! ```text
//! header:  "SSKCACHE"  (8 bytes magic)
//!          version     (u32 LE, currently 1)
//! entry*:  fingerprint (u64 LE — the KernelQuery fingerprint)
//!          payload_len (u32 LE)
//!          checksum    (u64 LE — FNV-1a of the payload bytes)
//!          payload     (payload_len bytes of canonical CacheEntry JSON)
//! ```
//!
//! Inserts append a single framed entry (one `write_all` + flush), so the
//! common path never rewrites the file. Recovery reads entries until the
//! first frame that is short, oversized, checksum-mismatched, or
//! unparsable, and treats everything from that point on as lost — the
//! standard write-ahead-log discipline: a torn tail from a crash costs the
//! tail, never the prefix. [`rewrite_atomic`] (used by compaction and
//! corruption repair) builds the file aside and renames it into place so
//! readers never observe a half-written store.

use std::fs::{self, File, OpenOptions};
use std::io::{self, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use crate::entry::CacheEntry;
use crate::query::fnv1a;

/// File magic. Eight bytes so the header is naturally aligned.
pub const MAGIC: &[u8; 8] = b"SSKCACHE";
/// Current format version. Bumping it invalidates every existing store.
pub const VERSION: u32 = 1;
/// Hard cap on a single entry payload; anything larger is corruption.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;
/// Name of the log file inside a cache directory.
pub const LOG_FILE: &str = "kernels.sskc";

/// What [`load`] found on disk.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries recovered intact.
    pub loaded: u64,
    /// Bytes of log discarded as corrupt or torn (0 on a clean load).
    pub lost_bytes: u64,
    /// Whether a corrupt/torn tail (or a bad header) was encountered.
    pub rejected_tail: bool,
    /// Whether the header was missing/foreign/old-version, invalidating the
    /// whole file.
    pub invalidated: bool,
    /// Intact frames refused by the static-verification gate on open
    /// (malformed for their own query's machine, or refuted on a 0-1
    /// input). Set by [`crate::KernelCache::open`], not by [`load`] — the
    /// disk layer only validates framing.
    pub verify_rejected: u64,
    /// Intact frames whose gate stamp round-tripped valid, letting recovery
    /// skip gate re-analysis. Set by [`crate::KernelCache::open`], not by
    /// [`load`].
    pub verify_skipped: u64,
}

/// The log file inside `dir`.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join(LOG_FILE)
}

fn read_exact_or_eof(file: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(ErrorKind::UnexpectedEof, "torn frame"))
                }
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Loads every intact entry from the log in `dir`. Missing file is an empty,
/// clean load. A bad header invalidates the file; a bad entry truncates the
/// logical log at that entry.
pub fn load(dir: &Path) -> io::Result<(Vec<CacheEntry>, LoadReport)> {
    let path = log_path(dir);
    let mut report = LoadReport::default();
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok((Vec::new(), report)),
        Err(e) => return Err(e),
    };
    let total = file.metadata()?.len();

    let mut header = [0u8; 12];
    if !matches!(read_exact_or_eof(&mut file, &mut header), Ok(true))
        || &header[..8] != MAGIC
        || u32::from_le_bytes(header[8..12].try_into().unwrap()) != VERSION
    {
        report.invalidated = true;
        report.rejected_tail = true;
        report.lost_bytes = total;
        return Ok((Vec::new(), report));
    }

    let mut entries = Vec::new();
    let mut consumed = header.len() as u64;
    loop {
        let mut frame = [0u8; 20];
        match read_exact_or_eof(&mut file, &mut frame) {
            Ok(false) => break,
            Ok(true) => {}
            Err(_) => {
                report.rejected_tail = true;
                break;
            }
        }
        let fingerprint = u64::from_le_bytes(frame[0..8].try_into().unwrap());
        let payload_len = u32::from_le_bytes(frame[8..12].try_into().unwrap());
        let checksum = u64::from_le_bytes(frame[12..20].try_into().unwrap());
        if payload_len > MAX_PAYLOAD {
            report.rejected_tail = true;
            break;
        }
        let mut payload = vec![0u8; payload_len as usize];
        match read_exact_or_eof(&mut file, &mut payload) {
            Ok(true) => {}
            _ => {
                report.rejected_tail = true;
                break;
            }
        }
        if fnv1a(&payload) != checksum {
            report.rejected_tail = true;
            break;
        }
        let entry = match CacheEntry::from_payload(&payload) {
            Ok(e) => e,
            Err(_) => {
                report.rejected_tail = true;
                break;
            }
        };
        // A frame whose fingerprint disagrees with its own payload is as
        // corrupt as a bad checksum.
        if entry.fingerprint() != fingerprint {
            report.rejected_tail = true;
            break;
        }
        consumed += (frame.len() + payload.len()) as u64;
        entries.push(entry);
        report.loaded += 1;
    }
    report.lost_bytes = total.saturating_sub(consumed);
    Ok((entries, report))
}

fn encode_entry(entry: &CacheEntry, out: &mut Vec<u8>) {
    let payload = entry.to_payload();
    out.extend_from_slice(&entry.fingerprint().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Opens the log for appending, writing a fresh header if the file is new.
pub fn open_for_append(dir: &Path) -> io::Result<File> {
    fs::create_dir_all(dir)?;
    let path = log_path(dir);
    let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
    if file.metadata()?.len() == 0 {
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        file.write_all(&header)?;
        file.flush()?;
    }
    Ok(file)
}

/// Appends one framed entry. The frame is assembled in memory and written
/// with a single `write_all`, so a crash can tear at most the final frame —
/// which recovery then drops.
pub fn append(file: &mut File, entry: &CacheEntry) -> io::Result<()> {
    let mut buf = Vec::new();
    encode_entry(entry, &mut buf);
    file.write_all(&buf)?;
    file.flush()
}

/// Rewrites the whole log atomically: serialize to `<log>.tmp`, fsync, then
/// rename over the live file. Used for compaction and to repair a store
/// whose tail was rejected.
pub fn rewrite_atomic<'a>(
    dir: &Path,
    entries: impl IntoIterator<Item = &'a CacheEntry>,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = log_path(dir);
    let tmp = path.with_extension("sskc.tmp");
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    for entry in entries {
        encode_entry(entry, &mut buf);
    }
    let mut file = File::create(&tmp)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, &path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::KernelQuery;
    use sortsynth_isa::{IsaMode, Machine};

    fn entry(n: u8) -> CacheEntry {
        let machine = Machine::new(n, 1, IsaMode::Cmov);
        let program = machine.parse_program("mov s1 r1").unwrap();
        CacheEntry {
            query: KernelQuery::best(n, 1, IsaMode::Cmov),
            program,
            minimal_certified: false,
            search_millis: 1,
            gate_checksum: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sskc-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = tmp_dir("rt");
        let mut file = open_for_append(&dir).unwrap();
        append(&mut file, &entry(2)).unwrap();
        append(&mut file, &entry(3)).unwrap();
        drop(file);
        let (entries, report) = load(&dir).unwrap();
        assert_eq!(entries, vec![entry(2), entry(3)]);
        assert_eq!(report.loaded, 2);
        assert!(!report.rejected_tail && report.lost_bytes == 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_prefix() {
        let dir = tmp_dir("trunc");
        let mut file = open_for_append(&dir).unwrap();
        append(&mut file, &entry(2)).unwrap();
        append(&mut file, &entry(3)).unwrap();
        drop(file);
        let path = log_path(&dir);
        let len = fs::metadata(&path).unwrap().len();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..len as usize - 5]).unwrap();
        let (entries, report) = load(&dir).unwrap();
        assert_eq!(entries, vec![entry(2)]);
        assert!(report.rejected_tail);
        assert!(report.lost_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_detected_by_checksum() {
        let dir = tmp_dir("flip");
        let mut file = open_for_append(&dir).unwrap();
        append(&mut file, &entry(2)).unwrap();
        drop(file);
        let path = log_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (entries, report) = load(&dir).unwrap();
        assert!(entries.is_empty());
        assert!(report.rejected_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_bump_invalidates() {
        let dir = tmp_dir("ver");
        let mut file = open_for_append(&dir).unwrap();
        append(&mut file, &entry(2)).unwrap();
        drop(file);
        let path = log_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0xFF; // version LSB
        fs::write(&path, &bytes).unwrap();
        let (entries, report) = load(&dir).unwrap();
        assert!(entries.is_empty());
        assert!(report.invalidated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_atomic_replaces_contents() {
        let dir = tmp_dir("rw");
        let mut file = open_for_append(&dir).unwrap();
        append(&mut file, &entry(2)).unwrap();
        drop(file);
        rewrite_atomic(&dir, [&entry(3), &entry(4)]).unwrap();
        let (entries, report) = load(&dir).unwrap();
        assert_eq!(entries, vec![entry(3), entry(4)]);
        assert_eq!(report.loaded, 2);
        assert!(!log_path(&dir).with_extension("sskc.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
