//! Gate-stamp skip: a record that round-trips with a valid checksum skips
//! gate re-analysis on recovery, while unstamped or stale records are
//! re-gated exactly as before. The stamp is a staleness guard, not a
//! substitute for the gate — any content drift invalidates it.

use std::fs;
use std::path::PathBuf;

use sortsynth_cache::{disk, CacheEntry, KernelCache, KernelQuery};
use sortsynth_isa::IsaMode;
use sortsynth_obs::{names, registry};
use sortsynth_search::{synthesize, SynthesisConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sskc-stamp-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A correct, freshly synthesized (and therefore unstamped) n=3 entry.
fn solved_entry(query: &KernelQuery) -> CacheEntry {
    let cfg = SynthesisConfig::best(query.machine());
    let result = synthesize(&cfg);
    CacheEntry {
        query: query.clone(),
        program: result.first_program().expect("n=3 kernel exists"),
        minimal_certified: result.minimal_certified,
        search_millis: 3,
        gate_checksum: None,
    }
}

#[test]
fn stamped_records_skip_the_gate_on_reopen() {
    let dir = tmp_dir("skip");
    let query = KernelQuery::best(3, 1, IsaMode::Cmov);

    // Insert re-gates and stamps regardless of what the caller provides.
    {
        let cache = KernelCache::open(&dir, 8).unwrap();
        let entry = solved_entry(&query);
        assert!(entry.gate_checksum.is_none());
        cache.insert(entry).unwrap();
        assert_eq!(
            cache.stats().load.verify_skipped,
            0,
            "cold open has no stamps"
        );
    }

    // The persisted record carries a valid stamp, so recovery skips the gate.
    let before = registry().counter_value(names::VERIFY_GATE_SKIPPED_TOTAL);
    let cache = KernelCache::open(&dir, 8).unwrap();
    let load = cache.stats().load;
    assert_eq!(load.loaded, 1);
    assert_eq!(load.verify_skipped, 1);
    assert_eq!(load.verify_rejected, 0);
    assert_eq!(
        registry().counter_value(names::VERIFY_GATE_SKIPPED_TOTAL),
        before + 1,
        "the skip must be visible in the metrics registry"
    );
    let served = cache.get(&query).expect("stamped entry is served");
    assert!(query.machine().is_correct(&served.program));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unstamped_records_are_regated_not_refused() {
    let dir = tmp_dir("unstamped");
    let query = KernelQuery::best(3, 1, IsaMode::Cmov);

    // Hand-append a correct but unstamped record at the disk layer,
    // bypassing insert's stamping — the shape of a pre-stamp store.
    let entry = solved_entry(&query);
    let mut file = disk::open_for_append(&dir).unwrap();
    disk::append(&mut file, &entry).unwrap();
    drop(file);

    let cache = KernelCache::open(&dir, 8).unwrap();
    let load = cache.stats().load;
    assert_eq!(load.loaded, 1);
    assert_eq!(load.verify_skipped, 0, "no stamp, no skip");
    assert_eq!(load.verify_rejected, 0, "the gate itself still passes it");
    assert!(cache.get(&query).is_some());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_stale_stamp_is_ignored_and_the_gate_still_rejects() {
    let dir = tmp_dir("stale");
    let query = KernelQuery::best(3, 1, IsaMode::Cmov);

    // Steal the stamp from a genuine record, then swap in a program that
    // does not sort: the stamp no longer matches the content, so recovery
    // must fall back to the gate — which refutes the program.
    let genuine = {
        let cache = KernelCache::open(&dir, 8).unwrap();
        cache.insert(solved_entry(&query)).unwrap();
        cache.get(&query).unwrap()
    };
    assert!(genuine.gate_checksum.is_some());
    let mut forged = (*genuine).clone();
    forged.program = query.machine().parse_program("mov s1 r1").unwrap();
    let _ = fs::remove_dir_all(&dir);
    let mut file = disk::open_for_append(&dir).unwrap();
    disk::append(&mut file, &forged).unwrap();
    drop(file);

    let cache = KernelCache::open(&dir, 8).unwrap();
    let load = cache.stats().load;
    assert_eq!(
        load.verify_skipped, 0,
        "a stale stamp must not skip the gate"
    );
    assert_eq!(
        load.verify_rejected, 1,
        "the re-run gate rejects the program"
    );
    assert!(cache.get(&query).is_none());
    fs::remove_dir_all(&dir).unwrap();
}
