//! Crash-safety: a truncated or bit-flipped log entry must be rejected on
//! recovery, after which the kernel is simply re-synthesized and re-cached —
//! corruption costs a cache miss, never a wrong answer.

use std::fs;
use std::path::PathBuf;

use sortsynth_cache::{disk, CacheEntry, KernelCache, KernelQuery};
use sortsynth_isa::IsaMode;
use sortsynth_search::{synthesize, SynthesisConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sskc-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Synthesizes the query's kernel the way the service would.
fn synthesize_entry(query: &KernelQuery) -> CacheEntry {
    let cfg = SynthesisConfig::best(query.machine());
    let result = synthesize(&cfg);
    CacheEntry {
        query: query.clone(),
        program: result.first_program().expect("n=3 kernel exists"),
        minimal_certified: result.minimal_certified,
        search_millis: result.stats.search_time.as_millis() as u64,
        gate_checksum: None,
    }
}

fn corruption_round_trip(tag: &str, corrupt: impl FnOnce(&mut Vec<u8>)) {
    let dir = tmp_dir(tag);
    let query = KernelQuery::best(3, 1, IsaMode::Cmov);

    // Cold synthesis, cached.
    {
        let cache = KernelCache::open(&dir, 8).unwrap();
        let entry = synthesize_entry(&query);
        assert_eq!(entry.program.len(), 11, "paper's n=3 optimal length");
        cache.insert(entry).unwrap();
    }

    // Crash damage.
    let path = disk::log_path(&dir);
    let mut bytes = fs::read(&path).unwrap();
    corrupt(&mut bytes);
    fs::write(&path, &bytes).unwrap();

    // Recovery rejects the damaged entry; the query misses.
    let cache = KernelCache::open(&dir, 8).unwrap();
    assert_eq!(cache.stats().load.loaded, 0);
    assert!(cache.stats().load.rejected_tail);
    assert!(
        cache.get(&query).is_none(),
        "corrupt entry must not be served"
    );

    // The caller's recovery path: re-synthesize, re-insert, hit again —
    // including across another reopen (the repaired log is clean).
    let entry = synthesize_entry(&query);
    cache.insert(entry).unwrap();
    assert_eq!(cache.get(&query).unwrap().program.len(), 11);
    drop(cache);
    let reopened = KernelCache::open(&dir, 8).unwrap();
    assert_eq!(reopened.stats().load.loaded, 1);
    assert!(!reopened.stats().load.rejected_tail);
    let served = reopened.get(&query).unwrap();
    assert!(query.machine().is_correct(&served.program));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_entry_is_rejected_and_resynthesized() {
    corruption_round_trip("trunc", |bytes| {
        let keep = bytes.len() - 7;
        bytes.truncate(keep);
    });
}

#[test]
fn bit_flipped_entry_is_rejected_and_resynthesized() {
    corruption_round_trip("flip", |bytes| {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
    });
}
