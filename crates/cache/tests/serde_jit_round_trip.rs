//! The serde wire format round-trips programs losslessly: serialize →
//! deserialize → byte-identical payload, and the deserialized kernel
//! behaves identically under the interpreter and the JIT.

use sortsynth_cache::{CacheEntry, KernelQuery};
use sortsynth_isa::{IsaMode, Machine, Program};
use sortsynth_jit::JitKernel;
use sortsynth_search::{synthesize, SynthesisConfig};

fn synthesized(n: u8, scratch: u8, mode: IsaMode) -> (Machine, Program) {
    let machine = Machine::new(n, scratch, mode);
    let result = synthesize(&SynthesisConfig::best(machine.clone()));
    (machine, result.first_program().expect("kernel exists"))
}

#[test]
fn entry_payload_round_trip_is_byte_identical() {
    for (n, mode) in [(2, IsaMode::Cmov), (3, IsaMode::Cmov), (3, IsaMode::MinMax)] {
        let (machine, program) = synthesized(n, 1, mode);
        let entry = CacheEntry {
            query: KernelQuery::best(n, 1, mode),
            program: program.clone(),
            minimal_certified: false,
            search_millis: 42,
            gate_checksum: None,
        };
        let payload = entry.to_payload();
        let back = CacheEntry::from_payload(&payload).unwrap();
        assert_eq!(back, entry);
        assert_eq!(back.to_payload(), payload, "canonical JSON is stable");
        assert_eq!(
            machine.format_program(&back.program),
            machine.format_program(&program)
        );
    }
}

#[test]
fn deserialized_program_agrees_with_jit() {
    for (n, mode) in [(3, IsaMode::Cmov), (3, IsaMode::MinMax)] {
        let (machine, program) = synthesized(n, 1, mode);
        let json = serde_json::to_string(&program).unwrap();
        let decoded: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded, program);
        assert!(
            machine.is_correct(&decoded),
            "interpreter accepts the kernel"
        );

        let jit = JitKernel::compile(&machine, &decoded).expect("JIT compiles");
        for perm in sortsynth_isa::permutations(n) {
            // Interpreter result for this permutation...
            let final_state = machine.run(&decoded, machine.initial_state(&perm));
            let interp: Vec<i32> = (0..n)
                .map(|i| final_state.reg(sortsynth_isa::Reg::new(i)) as i32)
                .collect();
            // ...matches the JIT running on the same values.
            let mut data: Vec<i32> = perm.iter().map(|&v| v as i32).collect();
            jit.run(&mut data);
            assert_eq!(data, interp, "n={n} mode={mode:?} perm={perm:?}");
        }
    }
}
