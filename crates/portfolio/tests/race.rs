//! Differential race tests: on a single-core host the portfolio's
//! correctness is argued through invariants, not wall clock.
//!
//! * Every arm that completes with a program produces one the exhaustive
//!   oracle accepts.
//! * The race winner's length equals the sequential enumerative optimum
//!   (exact arms enumerate shortest-first, and the verify gate never
//!   admits a wrong program).
//! * Exactly one `sortsynth_portfolio_win_total` increment per query.
//! * Cancellation reaches the losing arms: stochastic arms configured for
//!   millions of iterations report `Budget` (stopped at a poll point)
//!   instead of running to completion, and `thread::scope` has already
//!   joined them by the time the race returns.
//!
//! The metrics registry is process-global, so tests that assert on counter
//! deltas serialize on a mutex.

use std::sync::Mutex;

use sortsynth_cache::KernelQuery;
use sortsynth_isa::IsaMode;
use sortsynth_obs::names;
use sortsynth_portfolio::{backend_for, BackendKind, BackendStatus, Portfolio, SearchBudget};

/// Serializes tests that read process-global metric counters.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn win_total() -> u64 {
    sortsynth_obs::registry().counter_value(names::PORTFOLIO_WIN_TOTAL)
}

/// The sequential enumerative answer for `query` — the differential
/// reference every race is compared against.
fn sequential_optimum(query: &KernelQuery) -> u32 {
    let out = backend_for(BackendKind::AStar).run(query, &SearchBudget::unlimited(), None);
    match out.status {
        BackendStatus::Found { program, .. } => program.len() as u32,
        other => panic!("sequential reference failed: {other:?}"),
    }
}

#[test]
fn differential_matrix_exact_arms() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let exact = [
        BackendKind::AStar,
        BackendKind::AStarPar,
        BackendKind::Cegis,
        BackendKind::SmtMin,
        BackendKind::Plan,
    ];
    for (n, mode) in [
        (2, IsaMode::Cmov),
        (2, IsaMode::MinMax),
        (3, IsaMode::Cmov),
        (3, IsaMode::MinMax),
    ] {
        let query = KernelQuery::best(n, 1, mode);
        let machine = query.machine();
        let expected = sequential_optimum(&query);
        let before = win_total();
        let report = Portfolio::from_kinds(&exact).run(&query, &SearchBudget::unlimited(), None);

        // A verified winner exists and matches the sequential optimum.
        let winner = report
            .winner
            .unwrap_or_else(|| panic!("no winner for n={n} {mode:?}: {:?}", report.outcomes));
        assert!(winner.is_exact());
        assert_eq!(
            report.found_len,
            Some(expected),
            "winner {} length for n={n} {mode:?}",
            winner.name()
        );
        let program = report.program.as_ref().expect("winner program");
        assert!(machine.is_correct(program), "winner fails the oracle");
        assert_eq!(report.verify_rejected, 0);

        // Every completing arm's program is accepted by the oracle, and
        // exact completers match the optimum (shortest-first enumeration):
        // the winner's cost is ≤ every completed loser's cost.
        for out in &report.outcomes {
            if let BackendStatus::Found { program, .. } = &out.status {
                assert!(
                    machine.is_correct(program),
                    "{} returned an incorrect program",
                    out.kind.name()
                );
                assert_eq!(
                    program.len() as u32,
                    expected,
                    "{} completed with a non-optimal length",
                    out.kind.name()
                );
            }
        }

        // Exactly one win increment per query.
        assert_eq!(win_total(), before + 1, "win counter for n={n} {mode:?}");
    }
}

#[test]
fn full_roster_race_produces_one_verified_winner() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let query = KernelQuery::best(2, 1, IsaMode::Cmov);
    let machine = query.machine();
    let before = win_total();
    let report = Portfolio::all().run(&query, &SearchBudget::unlimited(), None);
    assert!(report.winner.is_some());
    let program = report.program.as_ref().expect("winner program");
    assert!(machine.is_correct(program));
    assert_eq!(win_total(), before + 1);
    // All seven arms ran (single wave without a policy) and were joined.
    assert_eq!(report.outcomes.len(), BackendKind::ALL.len());
    // Any stochastic arm that completed is also oracle-correct.
    for out in &report.outcomes {
        if let BackendStatus::Found { program, .. } = &out.status {
            assert!(machine.is_correct(program), "{}", out.kind.name());
        }
    }
}

#[test]
fn cancellation_stops_losing_stochastic_arms() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // MCTS and STOKE are configured for millions of iterations — far more
    // than they can run in the time the enumerative arm needs for n = 3.
    // Seeing `Budget` from them proves the race flag reached their poll
    // loops; seeing the race return proves the scope joined them.
    let query = KernelQuery::best(3, 1, IsaMode::Cmov);
    let portfolio =
        Portfolio::from_kinds(&[BackendKind::AStar, BackendKind::Mcts, BackendKind::Stoke]);
    let before_cancelled =
        sortsynth_obs::registry().counter_value(names::PORTFOLIO_CANCELLED_TOTAL);
    let report = portfolio.run(&query, &SearchBudget::unlimited(), None);
    assert_eq!(report.winner, Some(BackendKind::AStar));
    for kind in [BackendKind::Mcts, BackendKind::Stoke] {
        let out = report.outcome_of(kind).expect("arm ran");
        assert_eq!(
            out.status,
            BackendStatus::Budget,
            "{} was not cancelled",
            kind.name()
        );
    }
    let after_cancelled = sortsynth_obs::registry().counter_value(names::PORTFOLIO_CANCELLED_TOTAL);
    assert!(after_cancelled >= before_cancelled + 2);
}

#[test]
fn widen_on_miss_reaches_the_second_wave() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let full = KernelQuery::best(2, 1, IsaMode::Cmov);
    let mut policy = sortsynth_portfolio::DispatchPolicy::new();
    let astar_race =
        Portfolio::from_kinds(&[BackendKind::AStar]).run(&full, &SearchBudget::unlimited(), None);
    policy.record(&full, &astar_race);
    // Policy knows A* wins 2/1/cmov. Race a roster whose non-A* arms would
    // be slow: first wave = [AStar], rest = others, no widening expected.
    let report = Portfolio::from_kinds(&[BackendKind::AStar, BackendKind::Cegis]).run(
        &full,
        &SearchBudget::unlimited(),
        Some(&policy),
    );
    assert_eq!(report.winner, Some(BackendKind::AStar));
    assert!(!report.widened);
    assert_eq!(report.outcomes.len(), 1, "second wave never started");

    // Miss case: a bounded query (max_len 2, below the n = 2 optimum of
    // 4) has the same shape, so the policy still routes A* first; A*
    // proves NoProgram, the race widens to the second wave.
    let bounded = KernelQuery {
        max_len: Some(2),
        ..KernelQuery::best(2, 1, IsaMode::Cmov)
    };
    let before_widened = sortsynth_obs::registry().counter_value(names::PORTFOLIO_WIDENED_TOTAL);
    let report = Portfolio::from_kinds(&[BackendKind::AStar, BackendKind::SmtMin]).run(
        &bounded,
        &SearchBudget::unlimited(),
        Some(&policy),
    );
    assert!(report.winner.is_none(), "nothing fits under max_len = 2");
    assert!(report.widened, "first wave missed, race must widen");
    assert_eq!(report.outcomes.len(), 2, "both waves ran");
    assert_eq!(
        sortsynth_obs::registry().counter_value(names::PORTFOLIO_WIDENED_TOTAL),
        before_widened + 1
    );
}
