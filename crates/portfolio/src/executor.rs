//! The first-win racing executor.
//!
//! A race fans one query out to a set of arms on scoped threads. Arms
//! report back over a channel; the first solution that passes the static
//! verification gate wins, and the executor trips the shared race flag so
//! every other arm stops at its next budget poll. `std::thread::scope`
//! guarantees the losers are joined before the race returns — cancellation
//! is cooperative but never detached.
//!
//! On a single-core host the "race" is mostly a time-sliced interleaving;
//! correctness therefore leans on counters and invariants rather than wall
//! clock: exactly one win per successful race, every completed arm's
//! program accepted by the exhaustive oracle, and (for exact arms) the
//! winner's length equal to the sequential optimum. The differential tests
//! in `tests/race.rs` pin all three.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use sortsynth_cache::KernelQuery;
use sortsynth_isa::{Machine, Program};
use sortsynth_obs::names;
use sortsynth_obs::profile::{self, Phase};
use sortsynth_search::SearchBudget;

use crate::backend::{backend_for, Backend, BackendKind, BackendOutcome, BackendStatus};
use crate::policy::DispatchPolicy;

/// The executor: a fixed roster of arms plus the wave-sizing knob.
pub struct Portfolio {
    arms: Vec<Box<dyn Backend>>,
    /// Maximum arms in the policy-ranked first wave (default 2). Ignored
    /// when the dispatch policy has no history for the query's shape — the
    /// race then runs every arm at once.
    pub first_wave: usize,
}

/// What one race produced.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The verify-gated winning arm, if any arm found a program.
    pub winner: Option<BackendKind>,
    /// The winning program.
    pub program: Option<Program>,
    /// Its length.
    pub found_len: Option<u32>,
    /// Whether the winning backend certifies length-minimality.
    pub minimal_certified: bool,
    /// Every arm's outcome, winners and losers alike (one entry per arm
    /// that ran; arms in an unreached second wave are absent).
    pub outcomes: Vec<BackendOutcome>,
    /// Candidate solutions the verification gate refused.
    pub verify_rejected: u32,
    /// Whether the first wave missed and the race widened to the rest.
    pub widened: bool,
    /// Wall-clock time for the whole race.
    pub elapsed: Duration,
}

impl RaceReport {
    /// The outcome of one arm, if it ran.
    pub fn outcome_of(&self, kind: BackendKind) -> Option<&BackendOutcome> {
        self.outcomes.iter().find(|o| o.kind == kind)
    }
}

/// Bumps the per-backend counter `sortsynth_portfolio_<arm>_<what>`.
fn arm_counter(kind: BackendKind, what: &str, help: &str) {
    let name = format!("sortsynth_portfolio_{}_{}", kind.metric_token(), what);
    sortsynth_obs::registry().counter(&name, help).inc();
}

impl Portfolio {
    /// Builds an executor with the default adapter for each kind.
    pub fn from_kinds(kinds: &[BackendKind]) -> Portfolio {
        Portfolio {
            arms: kinds.iter().map(|&k| backend_for(k)).collect(),
            first_wave: 2,
        }
    }

    /// An executor racing every known backend.
    pub fn all() -> Portfolio {
        Portfolio::from_kinds(&BackendKind::ALL)
    }

    /// The roster, in construction order.
    pub fn kinds(&self) -> Vec<BackendKind> {
        self.arms.iter().map(|a| a.kind()).collect()
    }

    /// Races the arms on `query`.
    ///
    /// With a [`DispatchPolicy`], the race first runs only the arms the
    /// policy ranks best for this query's shape, widening to the remaining
    /// arms when the first wave completes without a verified winner and the
    /// outer budget still has room. The policy is read-only here; record
    /// the returned report into it (and persist) at the call site.
    pub fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        policy: Option<&DispatchPolicy>,
    ) -> RaceReport {
        let start = Instant::now();
        let registry = sortsynth_obs::registry();
        registry
            .counter(
                names::PORTFOLIO_RACES_TOTAL,
                "Portfolio races executed (one per query reaching the executor).",
            )
            .inc();
        let machine = query.machine();
        let kinds = self.kinds();
        let (first, rest) = match policy {
            Some(policy) => policy.waves(query, &kinds, self.first_wave),
            None => (kinds, Vec::new()),
        };
        let mut report = RaceReport {
            winner: None,
            program: None,
            found_len: None,
            minimal_certified: false,
            outcomes: Vec::new(),
            verify_rejected: 0,
            widened: false,
            elapsed: Duration::ZERO,
        };
        self.run_wave(&first, query, budget, &machine, start, &mut report);
        if report.winner.is_none() && !rest.is_empty() && !budget.is_exhausted() {
            report.widened = true;
            registry
                .counter(
                    names::PORTFOLIO_WIDENED_TOTAL,
                    "Races whose first wave missed and widened to the remaining arms.",
                )
                .inc();
            self.run_wave(&rest, query, budget, &machine, start, &mut report);
        }
        report.elapsed = start.elapsed();
        report
    }

    /// Runs one wave of arms to completion, updating `report` in place.
    fn run_wave(
        &self,
        wave: &[BackendKind],
        query: &KernelQuery,
        budget: &SearchBudget,
        machine: &Machine,
        start: Instant,
        report: &mut RaceReport,
    ) {
        let arms: Vec<&dyn Backend> = self
            .arms
            .iter()
            .map(|a| a.as_ref())
            .filter(|a| wave.contains(&a.kind()))
            .collect();
        if arms.is_empty() {
            return;
        }
        // One fresh race flag per wave, chained onto the caller's budget:
        // the service can still revoke the whole request while the race
        // separately cancels losing arms.
        let (race_budget, race_handle) = budget.clone().cancellable();
        let (tx, rx) = mpsc::channel::<BackendOutcome>();
        let registry = sortsynth_obs::registry();
        std::thread::scope(|scope| {
            for arm in &arms {
                let tx = tx.clone();
                let arm_budget = race_budget.clone();
                let arm = *arm;
                scope.spawn(move || {
                    // Per-arm wall attribution when the phase profiler is
                    // on: arms are black boxes (SMT, MCTS, …), so the race
                    // accounts their whole run rather than inner phases.
                    let profiled = profile::enabled().then(Instant::now);
                    let out = arm.run(query, &arm_budget, None);
                    if let Some(t0) = profiled {
                        let name = format!(
                            "sortsynth_portfolio_{}_nanos_total",
                            arm.kind().metric_token()
                        );
                        sortsynth_obs::registry()
                            .counter(&name, "Wall nanoseconds this arm ran in races.")
                            .add(t0.elapsed().as_nanos() as u64);
                    }
                    // The receiver hangs up only after all arms reported;
                    // a send can still race scope teardown on panic paths,
                    // so ignore the error.
                    let _ = tx.send(out);
                });
            }
            drop(tx);
            while let Ok(out) = rx.recv() {
                match &out.status {
                    BackendStatus::Found {
                        program,
                        minimal_certified,
                    } if report.winner.is_none() => {
                        match profile::time_global(Phase::VerifyGate, || {
                            sortsynth_verify::gate(machine, program)
                        }) {
                            Ok(()) => {
                                report.winner = Some(out.kind);
                                report.found_len = Some(program.len() as u32);
                                report.minimal_certified = *minimal_certified;
                                report.program = Some(program.clone());
                                registry
                                    .counter(
                                        names::PORTFOLIO_WIN_TOTAL,
                                        "Races that produced a verify-gated winner.",
                                    )
                                    .inc();
                                arm_counter(
                                    out.kind,
                                    "wins_total",
                                    "Races this backend won with a verified solution.",
                                );
                                names::portfolio_ttfs_seconds().observe_duration(start.elapsed());
                                race_handle.cancel();
                            }
                            Err(_) => {
                                report.verify_rejected += 1;
                                registry
                                    .counter(
                                        names::PORTFOLIO_VERIFY_REJECTED_TOTAL,
                                        "Candidate winners rejected by the verification gate.",
                                    )
                                    .inc();
                                arm_counter(
                                    out.kind,
                                    "verify_rejected_total",
                                    "Candidate solutions from this backend the gate refused.",
                                );
                            }
                        }
                    }
                    BackendStatus::Found { .. } | BackendStatus::NoProgram => {
                        registry
                            .counter(
                                names::PORTFOLIO_LOSS_TOTAL,
                                "Arms that completed a solution but lost the race.",
                            )
                            .inc();
                        arm_counter(
                            out.kind,
                            "losses_total",
                            "Races this backend completed but did not win.",
                        );
                    }
                    BackendStatus::Budget => {
                        registry
                            .counter(
                                names::PORTFOLIO_CANCELLED_TOTAL,
                                "Arms stopped early by race cancellation.",
                            )
                            .inc();
                        arm_counter(
                            out.kind,
                            "cancelled_total",
                            "Races where this backend was cancelled mid-run.",
                        );
                    }
                    BackendStatus::Unsupported => {}
                }
                report.outcomes.push(out);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn race_of_exact_arms_finds_the_n2_optimum() {
        let query = KernelQuery::best(2, 1, IsaMode::Cmov);
        let portfolio = Portfolio::from_kinds(&[BackendKind::AStar, BackendKind::SmtMin]);
        let report = portfolio.run(&query, &SearchBudget::unlimited(), None);
        assert_eq!(report.found_len, Some(4));
        let prog = report.program.as_ref().expect("winner program");
        assert!(query.machine().is_correct(prog));
        assert!(report.winner.is_some());
        assert_eq!(report.verify_rejected, 0);
    }

    #[test]
    fn exhausted_budget_yields_no_winner() {
        let query = KernelQuery::best(3, 1, IsaMode::Cmov);
        let (budget, handle) = SearchBudget::unlimited().cancellable();
        handle.cancel();
        let portfolio = Portfolio::from_kinds(&[BackendKind::AStar, BackendKind::Cegis]);
        let report = portfolio.run(&query, &budget, None);
        assert!(report.winner.is_none());
        assert!(report.program.is_none());
        assert_eq!(report.outcomes.len(), 2);
        for out in &report.outcomes {
            assert_eq!(out.status, BackendStatus::Budget);
        }
    }
}
