//! First-win portfolio execution: race every synthesis backend behind one
//! dispatch layer.
//!
//! The repository grew seven ways to produce a sorting kernel — the paper's
//! enumerative search (sequential and parallel), the SMT front-ends
//! (CEGIS and iterated-deepening SMT-Perm), the AlphaDev-style MCTS
//! baseline, the STOKE-style MCMC sampler, and the classical planner. They
//! have wildly different sweet spots, and no single choice dominates across
//! query shapes. This crate gives them one uniform face and races them:
//!
//! * [`Backend`] — one trait, `run(query, budget) -> BackendOutcome`, with
//!   an adapter per engine ([`backend_for`]).
//! * [`Portfolio`] — fans a [`KernelQuery`] out to a configurable backend
//!   set on scoped threads; the first solution that passes the static
//!   verification gate ([`sortsynth_verify::gate`]) wins and cancels the
//!   rest through the shared [`SearchBudget`] flag-chaining machinery.
//! * [`DispatchPolicy`] — a learned per-query-shape win-rate table,
//!   persisted as JSON next to the kernel cache, that shrinks the first
//!   wave to historically-best arms and only widens on a miss.
//!
//! Losing arms are *cancelled, then joined*: every engine polls the shared
//! budget cooperatively (per expansion, per CDCL decision, per MCMC
//! proposal, …), so a race leaves no detached threads behind.
//!
//! # Example
//!
//! ```
//! use sortsynth_cache::KernelQuery;
//! use sortsynth_isa::IsaMode;
//! use sortsynth_portfolio::{BackendKind, Portfolio};
//! use sortsynth_search::SearchBudget;
//!
//! let query = KernelQuery::best(2, 1, IsaMode::Cmov);
//! let portfolio = Portfolio::from_kinds(&[BackendKind::AStar, BackendKind::SmtMin]);
//! let report = portfolio.run(&query, &SearchBudget::unlimited(), None);
//! assert_eq!(report.found_len, Some(4)); // the optimal n = 2 CAS
//! assert!(report.winner.is_some());
//! ```

mod backend;
mod executor;
mod policy;

pub use backend::{backend_for, upper_len, Backend, BackendKind, BackendOutcome, BackendStatus};
pub use executor::{Portfolio, RaceReport};
pub use policy::{DispatchPolicy, PolicyRow, POLICY_FILE};

// Re-exported so downstream callers (service, CLI) can build budgets
// without depending on the search crate directly.
pub use sortsynth_search::{CancelHandle, SearchBudget};
