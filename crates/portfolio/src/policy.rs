//! The learned dispatch policy: a per-query-shape win-rate table.
//!
//! Every race records which arm won, which arms completed without winning,
//! and which were cancelled, keyed by the query's *shape* — `(n, scratch,
//! mode)`, the parameters that determine an engine's relative strength
//! (length bounds and cut toggles change how long a search takes, not
//! which engine family wins). The table persists as JSON next to the
//! kernel cache ([`POLICY_FILE`]), so a restarted service keeps its
//! routing knowledge.
//!
//! The executor consumes the table through [`DispatchPolicy::waves`]: arms
//! with recorded wins for the shape race first (best win count, then
//! fastest), everything else is held back for the widen-on-miss second
//! wave. Shapes with no history race every arm — the policy only ever
//! narrows where it has evidence.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde::{Deserialize, Error, Serialize, Value};
use sortsynth_cache::KernelQuery;

use crate::backend::{BackendKind, BackendStatus};
use crate::executor::RaceReport;

/// File name of the persisted policy, placed alongside the kernel cache.
pub const POLICY_FILE: &str = "portfolio_policy.json";

/// Per-(shape, arm) tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ArmStats {
    wins: u64,
    losses: u64,
    cancelled: u64,
    total_millis: u64,
}

/// One row of the dispatch table, for the `stats` verb and the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRow {
    /// The query shape, canonically `n/scratch/mode` (e.g. `3/1/cmov`).
    pub shape: String,
    /// The backend's [`BackendKind::name`].
    pub backend: String,
    /// Races this arm won for the shape.
    pub wins: u64,
    /// Races this arm completed without winning.
    pub losses: u64,
    /// Races this arm was cancelled in.
    pub cancelled: u64,
    /// Total wall-clock milliseconds this arm spent on the shape.
    pub total_millis: u64,
}

/// The win-rate table. See the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchPolicy {
    shapes: BTreeMap<String, BTreeMap<String, ArmStats>>,
}

/// The canonical shape key of a query.
fn shape_key(query: &KernelQuery) -> String {
    format!("{}/{}/{}", query.n, query.scratch, query.mode.wire_name())
}

impl DispatchPolicy {
    /// An empty table.
    pub fn new() -> DispatchPolicy {
        DispatchPolicy::default()
    }

    /// Loads the table from `path`. A missing or unreadable file yields an
    /// empty table — routing knowledge is an optimization, never a
    /// precondition.
    pub fn load(path: &Path) -> DispatchPolicy {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_default()
    }

    /// Persists the table to `path` (write-then-rename for atomicity).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        let text = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Folds one race's outcomes into the table.
    pub fn record(&mut self, query: &KernelQuery, report: &RaceReport) {
        let shape = self.shapes.entry(shape_key(query)).or_default();
        for out in &report.outcomes {
            let arm = shape.entry(out.kind.name().to_string()).or_default();
            arm.total_millis += out.elapsed.as_millis() as u64;
            if report.winner == Some(out.kind) {
                arm.wins += 1;
            } else {
                match out.status {
                    BackendStatus::Found { .. } | BackendStatus::NoProgram => arm.losses += 1,
                    BackendStatus::Budget => arm.cancelled += 1,
                    BackendStatus::Unsupported => {}
                }
            }
        }
    }

    /// Splits `kinds` into the policy-ranked first wave (at most
    /// `first_wave` arms with recorded wins for this shape, best win count
    /// first, total time as tie-break) and the widen-on-miss rest. With no
    /// recorded wins the first wave is all of `kinds`.
    pub fn waves(
        &self,
        query: &KernelQuery,
        kinds: &[BackendKind],
        first_wave: usize,
    ) -> (Vec<BackendKind>, Vec<BackendKind>) {
        let Some(shape) = self.shapes.get(&shape_key(query)) else {
            return (kinds.to_vec(), Vec::new());
        };
        let mut ranked: Vec<(BackendKind, &ArmStats)> = kinds
            .iter()
            .filter_map(|&k| {
                shape
                    .get(k.name())
                    .filter(|stats| stats.wins > 0)
                    .map(|stats| (k, stats))
            })
            .collect();
        if ranked.is_empty() {
            return (kinds.to_vec(), Vec::new());
        }
        ranked.sort_by(|(_, a), (_, b)| {
            b.wins
                .cmp(&a.wins)
                .then(a.total_millis.cmp(&b.total_millis))
        });
        let first: Vec<BackendKind> = ranked
            .into_iter()
            .take(first_wave.max(1))
            .map(|(k, _)| k)
            .collect();
        let rest: Vec<BackendKind> = kinds
            .iter()
            .copied()
            .filter(|k| !first.contains(k))
            .collect();
        (first, rest)
    }

    /// The table flattened to rows, sorted by shape then backend.
    pub fn rows(&self) -> Vec<PolicyRow> {
        self.shapes
            .iter()
            .flat_map(|(shape, arms)| {
                arms.iter().map(move |(backend, stats)| PolicyRow {
                    shape: shape.clone(),
                    backend: backend.clone(),
                    wins: stats.wins,
                    losses: stats.losses,
                    cancelled: stats.cancelled,
                    total_millis: stats.total_millis,
                })
            })
            .collect()
    }

    /// Whether the table has no recorded races.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }
}

impl Serialize for PolicyRow {
    fn serialize(&self) -> Value {
        Value::map([
            ("shape", self.shape.serialize()),
            ("backend", self.backend.serialize()),
            ("wins", self.wins.serialize()),
            ("losses", self.losses.serialize()),
            ("cancelled", self.cancelled.serialize()),
            ("total_millis", self.total_millis.serialize()),
        ])
    }
}

impl Deserialize for PolicyRow {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(PolicyRow {
            shape: String::deserialize(value.required("shape")?)?,
            backend: String::deserialize(value.required("backend")?)?,
            wins: u64::deserialize(value.required("wins")?)?,
            losses: u64::deserialize(value.required("losses")?)?,
            cancelled: u64::deserialize(value.required("cancelled")?)?,
            total_millis: u64::deserialize(value.required("total_millis")?)?,
        })
    }
}

impl Serialize for DispatchPolicy {
    fn serialize(&self) -> Value {
        Value::map([("rows", self.rows().serialize())])
    }
}

impl Deserialize for DispatchPolicy {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let rows = Vec::<PolicyRow>::deserialize(value.required("rows")?)?;
        let mut policy = DispatchPolicy::new();
        for row in rows {
            policy.shapes.entry(row.shape).or_default().insert(
                row.backend,
                ArmStats {
                    wins: row.wins,
                    losses: row.losses,
                    cancelled: row.cancelled,
                    total_millis: row.total_millis,
                },
            );
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendOutcome;
    use sortsynth_isa::IsaMode;
    use std::time::Duration;

    fn report(winner: BackendKind, losers: &[BackendKind]) -> RaceReport {
        let mut outcomes = vec![BackendOutcome {
            kind: winner,
            status: BackendStatus::Found {
                program: Vec::new(),
                minimal_certified: true,
            },
            elapsed: Duration::from_millis(5),
        }];
        outcomes.extend(losers.iter().map(|&kind| BackendOutcome {
            kind,
            status: BackendStatus::Budget,
            elapsed: Duration::from_millis(9),
        }));
        RaceReport {
            winner: Some(winner),
            program: None,
            found_len: Some(4),
            minimal_certified: true,
            outcomes,
            verify_rejected: 0,
            widened: false,
            elapsed: Duration::from_millis(9),
        }
    }

    #[test]
    fn record_then_waves_narrows_to_the_winner() {
        let query = KernelQuery::best(2, 1, IsaMode::Cmov);
        let mut policy = DispatchPolicy::new();
        let kinds = [BackendKind::AStar, BackendKind::Cegis, BackendKind::Mcts];

        // No history: everything races.
        let (first, rest) = policy.waves(&query, &kinds, 2);
        assert_eq!(first.len(), 3);
        assert!(rest.is_empty());

        policy.record(&query, &report(BackendKind::AStar, &[BackendKind::Cegis]));
        let (first, rest) = policy.waves(&query, &kinds, 2);
        assert_eq!(first, vec![BackendKind::AStar]);
        assert_eq!(rest, vec![BackendKind::Cegis, BackendKind::Mcts]);

        // A different shape still races everything.
        let other = KernelQuery::best(3, 1, IsaMode::MinMax);
        let (first, rest) = policy.waves(&other, &kinds, 2);
        assert_eq!(first.len(), 3);
        assert!(rest.is_empty());
    }

    #[test]
    fn json_round_trip_via_disk() {
        let query = KernelQuery::best(2, 1, IsaMode::Cmov);
        let mut policy = DispatchPolicy::new();
        policy.record(&query, &report(BackendKind::SmtMin, &[BackendKind::Stoke]));
        let dir = std::env::temp_dir().join("sortsynth-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(POLICY_FILE);
        policy.save(&path).unwrap();
        let loaded = DispatchPolicy::load(&path);
        assert_eq!(policy, loaded);
        assert_eq!(loaded.rows().len(), 2);
        let _ = std::fs::remove_file(&path);

        // Missing file: empty table, no error.
        assert!(DispatchPolicy::load(&dir.join("absent.json")).is_empty());
    }
}
