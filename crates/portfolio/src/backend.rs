//! The uniform backend trait and one adapter per synthesis engine.
//!
//! Every engine in the workspace answers the same question — "find a
//! correct kernel for this machine, as short as you can, within this
//! budget" — through a different API. The adapters here normalize them to
//! [`Backend::run`] over a [`KernelQuery`] and a shared [`SearchBudget`],
//! which is all the racing executor needs. Cancellation is cooperative:
//! each adapter threads the budget into its engine's own polling points, so
//! a cancelled arm returns [`BackendStatus::Budget`] instead of running to
//! completion.

use std::time::{Duration, Instant};

use sortsynth_cache::{CutSpec, KernelQuery};
use sortsynth_isa::{IsaMode, Program};
use sortsynth_search::{synthesize, Cut, Outcome, ProgressHook, SearchBudget, SynthesisConfig};
use sortsynth_solvers::{
    smt_cegis, synthesize_minimal, Budget, CegisDomain, EncodeOptions, SynthOutcome,
};

/// The racing roster: every synthesis engine the portfolio can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendKind {
    /// The paper's enumerative search, sequential (§3).
    AStar,
    /// The sharded parallel enumerative search.
    AStarPar,
    /// SMT-CEGIS with the permutation counterexample domain, iterated over
    /// lengths so the first hit is minimal (§4.1).
    Cegis,
    /// Iterated-deepening SMT-Perm ([`synthesize_minimal`]).
    SmtMin,
    /// The AlphaDev-style MCTS baseline (unlearned).
    Mcts,
    /// The STOKE-style MCMC sampler, cold start.
    Stoke,
    /// The classical planner (BFS over the Plan-Parallel encoding).
    Plan,
}

impl BackendKind {
    /// All racing arms, in the order used when no dispatch policy ranks
    /// them (cheap exact engines first).
    pub const ALL: [BackendKind; 7] = [
        BackendKind::AStar,
        BackendKind::AStarPar,
        BackendKind::Cegis,
        BackendKind::SmtMin,
        BackendKind::Mcts,
        BackendKind::Stoke,
        BackendKind::Plan,
    ];

    /// Stable kebab-case name, used by the CLI (`--backend astar`), the
    /// wire protocol, and the dispatch-policy file.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::AStar => "astar",
            BackendKind::AStarPar => "astar-par",
            BackendKind::Cegis => "cegis",
            BackendKind::SmtMin => "smt-min",
            BackendKind::Mcts => "mcts",
            BackendKind::Stoke => "stoke",
            BackendKind::Plan => "plan",
        }
    }

    /// Parses a [`Self::name`].
    pub fn parse(name: &str) -> Option<BackendKind> {
        BackendKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// The name with `-` mapped to `_`, for embedding in Prometheus metric
    /// names (the registry has no label support, so per-backend series are
    /// name-suffixed: `sortsynth_portfolio_astar_par_wins_total`).
    pub fn metric_token(self) -> &'static str {
        match self {
            BackendKind::AStarPar => "astar_par",
            BackendKind::SmtMin => "smt_min",
            other => other.name(),
        }
    }

    /// Whether this backend is *exact*: it enumerates shortest-first (or
    /// proves shorter lengths empty), so a [`BackendStatus::Found`] program
    /// is length-minimal and a [`BackendStatus::NoProgram`] is a proof.
    /// Stochastic arms (MCTS, STOKE) are neither.
    pub fn is_exact(self) -> bool {
        !matches!(self, BackendKind::Mcts | BackendKind::Stoke)
    }
}

/// How one arm's run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendStatus {
    /// A correct program. Minimal-length when the producing backend
    /// certifies it (see `minimal_certified`).
    Found {
        /// The kernel.
        program: Program,
        /// Whether the backend's strategy certifies length-minimality.
        minimal_certified: bool,
    },
    /// Completed without a solution. A nonexistence proof (within the
    /// query's length bound) for [`BackendKind::is_exact`] backends; merely
    /// "came up empty" for the stochastic ones.
    NoProgram,
    /// The budget expired or the race cancelled this arm.
    Budget,
    /// The backend cannot handle this query shape (e.g. the planner's
    /// grounded encoding at large `n`).
    Unsupported,
}

/// The uniform result of one arm's run.
#[derive(Debug, Clone)]
pub struct BackendOutcome {
    /// Which arm produced this.
    pub kind: BackendKind,
    /// How the run ended.
    pub status: BackendStatus,
    /// Wall-clock time the arm spent.
    pub elapsed: Duration,
}

impl BackendOutcome {
    /// The found program, if any.
    pub fn program(&self) -> Option<&Program> {
        match &self.status {
            BackendStatus::Found { program, .. } => Some(program),
            _ => None,
        }
    }
}

/// One synthesis engine behind the uniform interface.
pub trait Backend: Send + Sync {
    /// Which arm this is.
    fn kind(&self) -> BackendKind;

    /// Runs the engine on `query` under `budget`. Implementations must poll
    /// the budget cooperatively and return [`BackendStatus::Budget`] when
    /// it trips; they must never outlive the call (no detached threads).
    fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        hook: Option<&ProgressHook>,
    ) -> BackendOutcome;
}

/// Constructs the default adapter for `kind`.
pub fn backend_for(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::AStar => Box::new(AStarBackend { threads: 1 }),
        BackendKind::AStarPar => Box::new(AStarBackend { threads: 2 }),
        BackendKind::Cegis => Box::new(CegisBackend),
        BackendKind::SmtMin => Box::new(SmtMinBackend),
        BackendKind::Mcts => Box::new(MctsBackend {
            iterations: 4_000_000,
            seed: 1,
        }),
        BackendKind::Stoke => Box::new(StokeBackend {
            iterations: 2_000_000,
            seed: 1,
        }),
        BackendKind::Plan => Box::new(PlanBackend),
    }
}

/// A sound inclusive length bound for arms that need one (the solver,
/// sampler, and MCTS arms search *up to* a length rather than outward): a
/// bubble-sort network has `n(n−1)/2` compare-and-swap stages, each
/// costing 4 instructions in cmov mode (`mov` + `cmp` + 2×`cmov`) or 3 in
/// min/max mode (`mov` + `min` + `max`), so a correct program of that
/// length always exists. The query's own `max_len` tightens it further.
pub fn upper_len(query: &KernelQuery) -> u32 {
    let n = query.n as u32;
    let pairs = n * (n - 1) / 2;
    let per_cas = match query.mode {
        IsaMode::Cmov => 4,
        IsaMode::MinMax => 3,
    };
    let net = per_cas * pairs;
    query.max_len.map_or(net, |m| m.min(net))
}

fn outcome(kind: BackendKind, status: BackendStatus, start: Instant) -> BackendOutcome {
    BackendOutcome {
        kind,
        status,
        elapsed: start.elapsed(),
    }
}

/// The enumerative search (§3), sequential or sharded-parallel.
struct AStarBackend {
    threads: usize,
}

impl Backend for AStarBackend {
    fn kind(&self) -> BackendKind {
        if self.threads <= 1 {
            BackendKind::AStar
        } else {
            BackendKind::AStarPar
        }
    }

    fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        hook: Option<&ProgressHook>,
    ) -> BackendOutcome {
        let start = Instant::now();
        let mut cfg = SynthesisConfig::new(query.machine());
        cfg.threads = self.threads;
        cfg.optimal_instrs_only = query.optimal_instrs_only;
        cfg.budget_viability = query.budget_viability;
        cfg.max_len = query.max_len;
        cfg.cut = query.cut.map(|cut| match cut {
            CutSpec::Factor { millis } => Cut::Factor(millis as f64 / 1000.0),
            CutSpec::Additive { add } => Cut::Additive(add),
        });
        cfg.budget = budget.clone();
        cfg.progress_hook = hook.cloned();
        let result = synthesize(&cfg);
        let status = match result.outcome {
            Outcome::Solved | Outcome::SolvedAll | Outcome::Exhausted => {
                match result.first_program() {
                    Some(program) => BackendStatus::Found {
                        program,
                        minimal_certified: result.minimal_certified,
                    },
                    None => BackendStatus::NoProgram,
                }
            }
            Outcome::TimeLimit | Outcome::Cancelled | Outcome::NodeLimit => BackendStatus::Budget,
        };
        outcome(self.kind(), status, start)
    }
}

/// SMT-CEGIS, iterated over lengths from 1 so the first hit is minimal.
struct CegisBackend;

impl Backend for CegisBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cegis
    }

    fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        _hook: Option<&ProgressHook>,
    ) -> BackendOutcome {
        let start = Instant::now();
        let machine = query.machine();
        for len in 1..=upper_len(query) {
            if budget.is_exhausted() {
                return outcome(self.kind(), BackendStatus::Budget, start);
            }
            let (result, _) = smt_cegis(
                &machine,
                len,
                CegisDomain::Permutations,
                EncodeOptions::default(),
                Budget::with_shared(budget.clone()),
            );
            match result {
                SynthOutcome::Found(program) => {
                    // Every shorter length was proven empty, so this is
                    // length-minimal.
                    return outcome(
                        self.kind(),
                        BackendStatus::Found {
                            program,
                            minimal_certified: true,
                        },
                        start,
                    );
                }
                SynthOutcome::NoProgram => continue,
                SynthOutcome::Budget => return outcome(self.kind(), BackendStatus::Budget, start),
            }
        }
        outcome(self.kind(), BackendStatus::NoProgram, start)
    }
}

/// Iterated-deepening SMT-Perm ([`synthesize_minimal`]).
struct SmtMinBackend;

impl Backend for SmtMinBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SmtMin
    }

    fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        _hook: Option<&ProgressHook>,
    ) -> BackendOutcome {
        let start = Instant::now();
        let machine = query.machine();
        let (result, _) = synthesize_minimal(
            &machine,
            1,
            upper_len(query),
            EncodeOptions::default(),
            Budget::with_shared(budget.clone()),
        );
        let status = match result {
            SynthOutcome::Found(program) => BackendStatus::Found {
                program,
                minimal_certified: true,
            },
            SynthOutcome::NoProgram => BackendStatus::NoProgram,
            SynthOutcome::Budget => BackendStatus::Budget,
        };
        outcome(self.kind(), status, start)
    }
}

/// The unlearned MCTS baseline. Stochastic: a `Found` is correct (the
/// engine replays candidates on the full oracle) but not minimal, and an
/// empty run proves nothing.
struct MctsBackend {
    iterations: u64,
    seed: u64,
}

impl Backend for MctsBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mcts
    }

    fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        _hook: Option<&ProgressHook>,
    ) -> BackendOutcome {
        let start = Instant::now();
        let result = sortsynth_mcts::run(&sortsynth_mcts::MctsConfig {
            machine: query.machine(),
            max_len: upper_len(query),
            iterations: self.iterations,
            exploration: 1.4,
            seed: self.seed,
            budget: budget.clone(),
        });
        let status = match result.best_program {
            Some(program) => BackendStatus::Found {
                program,
                minimal_certified: false,
            },
            None if budget.is_exhausted() => BackendStatus::Budget,
            None => BackendStatus::NoProgram,
        };
        outcome(self.kind(), status, start)
    }
}

/// The STOKE-style MCMC sampler, cold start over `upper_len` slots.
struct StokeBackend {
    iterations: u64,
    seed: u64,
}

impl Backend for StokeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Stoke
    }

    fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        _hook: Option<&ProgressHook>,
    ) -> BackendOutcome {
        let start = Instant::now();
        let result = sortsynth_stoke::run(&sortsynth_stoke::StokeConfig {
            machine: query.machine(),
            start: sortsynth_stoke::Start::Cold {
                slots: upper_len(query) as usize,
            },
            iterations: self.iterations,
            beta: 1.0,
            seed: self.seed,
            tests: sortsynth_stoke::TestSuite::Full,
            minimize_length: true,
            budget: budget.clone(),
        });
        let status = match result.best_correct {
            Some(program) => BackendStatus::Found {
                program,
                minimal_certified: false,
            },
            None if budget.is_exhausted() => BackendStatus::Budget,
            None => BackendStatus::NoProgram,
        };
        outcome(self.kind(), status, start)
    }
}

/// The classical planner: BFS over the Plan-Parallel encoding. BFS is
/// shortest-first over unit-cost actions (one per instruction), so plans
/// are length-minimal. Grounding is per-permutation-copy, which explodes
/// past `n = 3`; larger queries are reported [`BackendStatus::Unsupported`]
/// rather than grounded into memory.
struct PlanBackend;

impl Backend for PlanBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Plan
    }

    fn run(
        &self,
        query: &KernelQuery,
        budget: &SearchBudget,
        _hook: Option<&ProgressHook>,
    ) -> BackendOutcome {
        let start = Instant::now();
        if query.n > 3 {
            return outcome(self.kind(), BackendStatus::Unsupported, start);
        }
        let machine = query.machine();
        let (problem, instrs, _) = sortsynth_plan::encode_synthesis(&machine);
        let limits = sortsynth_plan::PlanLimits {
            budget: budget.clone(),
            ..sortsynth_plan::PlanLimits::default()
        };
        let result = sortsynth_plan::solve(&problem, sortsynth_plan::PlanStrategy::Bfs, limits);
        let max = upper_len(query) as usize;
        let status = match result.plan {
            Some(plan) if plan.len() <= max => BackendStatus::Found {
                program: sortsynth_plan::plan_to_program(&plan, &instrs),
                minimal_certified: true,
            },
            Some(_) => BackendStatus::NoProgram,
            None => match result.outcome {
                sortsynth_plan::PlanOutcome::Unsolvable => BackendStatus::NoProgram,
                _ => BackendStatus::Budget,
            },
        };
        outcome(self.kind(), status, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert!(!kind.metric_token().contains('-'));
        }
        assert_eq!(BackendKind::parse("no-such"), None);
    }

    #[test]
    fn upper_len_covers_known_optima() {
        // Known optimal lengths: n=2 cmov 4, n=3 cmov 11, n=3 minmax 8.
        assert_eq!(upper_len(&KernelQuery::best(2, 1, IsaMode::Cmov)), 4);
        assert_eq!(upper_len(&KernelQuery::best(3, 1, IsaMode::Cmov)), 12);
        assert_eq!(upper_len(&KernelQuery::best(3, 1, IsaMode::MinMax)), 9);
    }

    #[test]
    fn each_exact_backend_solves_n2() {
        let query = KernelQuery::best(2, 1, IsaMode::Cmov);
        let machine = query.machine();
        for kind in [
            BackendKind::AStar,
            BackendKind::AStarPar,
            BackendKind::Cegis,
            BackendKind::SmtMin,
            BackendKind::Plan,
        ] {
            let out = backend_for(kind).run(&query, &SearchBudget::unlimited(), None);
            let prog = out
                .program()
                .unwrap_or_else(|| panic!("{} found no program: {:?}", kind.name(), out.status));
            assert!(machine.is_correct(prog), "{} incorrect", kind.name());
            assert_eq!(prog.len(), 4, "{} non-minimal", kind.name());
        }
    }

    #[test]
    fn cancelled_budget_stops_every_backend() {
        let query = KernelQuery::best(3, 1, IsaMode::Cmov);
        let (budget, handle) = SearchBudget::unlimited().cancellable();
        handle.cancel();
        for kind in BackendKind::ALL {
            let out = backend_for(kind).run(&query, &budget, None);
            assert!(
                matches!(out.status, BackendStatus::Budget),
                "{} ignored a pre-cancelled budget: {:?}",
                kind.name(),
                out.status
            );
        }
    }
}
