//! Property-based tests for the ISA semantics and cost models.

use proptest::prelude::*;
use sortsynth_isa::{
    critical_path, permutations, uica_estimate, weighted_score, CostWeights, Instr, IsaMode,
    Machine, MachineState, Op, Program, Reg,
};

fn arb_machine() -> impl Strategy<Value = Machine> {
    (
        2u8..=5,
        1u8..=2,
        prop_oneof![Just(IsaMode::Cmov), Just(IsaMode::MinMax)],
    )
        .prop_map(|(n, m, mode)| Machine::new(n, m, mode))
}

/// An arbitrary instruction valid for `machine`.
fn arb_instr(machine: Machine) -> impl Strategy<Value = Instr> {
    let instrs = machine.all_instrs();
    (0..instrs.len()).prop_map(move |i| instrs[i])
}

fn arb_program(machine: Machine, max_len: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_instr(machine), 0..max_len)
}

proptest! {
    #[test]
    fn pack_round_trips(values in prop::collection::vec(0u8..=15, 0..=15)) {
        let st = MachineState::from_values(&values);
        prop_assert_eq!(st.values(values.len() as u8), values);
    }

    #[test]
    fn set_reg_is_isolated(values in prop::collection::vec(0u8..=15, 1..=15), idx in 0usize..15, v in 0u8..=15) {
        let idx = idx % values.len();
        let mut st = MachineState::from_values(&values);
        st.set_reg(Reg::new(idx as u8), v);
        for (i, &orig) in values.iter().enumerate() {
            let expected = if i == idx { v } else { orig };
            prop_assert_eq!(st.reg(Reg::new(i as u8)), expected);
        }
    }

    /// Kernels only move values around: execution can never introduce a
    /// value that was not already in some register.
    #[test]
    fn execution_never_invents_values(
        (machine, prog) in arb_machine().prop_flat_map(|m| {
            let mc = m.clone();
            arb_program(mc, 24).prop_map(move |p| (m.clone(), p))
        }),
        perm_idx in 0usize..120,
    ) {
        let perms = permutations(machine.n());
        let perm = &perms[perm_idx % perms.len()];
        let mut value_set = 0u16;
        let init = machine.initial_state(perm);
        for r in machine.regs() {
            value_set |= 1 << init.reg(r);
        }
        let out = machine.run(&prog, init);
        for r in machine.regs() {
            prop_assert!(value_set & (1 << out.reg(r)) != 0, "value invented at {r:?}");
        }
    }

    /// Only `cmp` writes flags; every other opcode preserves them.
    #[test]
    fn flag_discipline(
        (machine, instr) in arb_machine().prop_flat_map(|m| {
            let mc = m.clone();
            arb_instr(mc).prop_map(move |i| (m.clone(), i))
        }),
        lt in any::<bool>(),
    ) {
        let perms = permutations(machine.n());
        let mut st = machine.initial_state(&perms[perms.len() - 1]);
        st.set_flags(lt, !lt);
        let before = (st.lt_flag(), st.gt_flag());
        st.exec(instr);
        if instr.op.writes_flags() {
            // cmp of distinct-or-equal values: flags are a function of the
            // compared values; at least they are never both set.
            prop_assert!(!(st.lt_flag() && st.gt_flag()));
        } else {
            prop_assert_eq!((st.lt_flag(), st.gt_flag()), before);
        }
    }

    /// `format` then `parse` is the identity on canonical programs.
    #[test]
    fn parse_format_round_trip(
        (machine, prog) in arb_machine().prop_flat_map(|m| {
            let mc = m.clone();
            arb_program(mc, 16).prop_map(move |p| (m.clone(), p))
        }),
    ) {
        let text = machine.format_program(&prog);
        let reparsed = machine.parse_program(&text).expect("own output parses");
        prop_assert_eq!(reparsed, prog);
    }

    /// Cost models are consistent: weighted score is additive over
    /// concatenation, and the critical path never exceeds program length.
    #[test]
    fn cost_model_invariants(
        (machine, a, b) in arb_machine().prop_flat_map(|m| {
            let m1 = m.clone();
            let m2 = m.clone();
            (arb_program(m1, 12), arb_program(m2, 12)).prop_map(move |(a, b)| (m.clone(), a, b))
        }),
    ) {
        let _ = &machine;
        let w = CostWeights::default();
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        prop_assert_eq!(weighted_score(&ab, w), weighted_score(&a, w) + weighted_score(&b, w));
        prop_assert!(critical_path(&ab) as usize <= ab.len());
        prop_assert!(critical_path(&ab) >= critical_path(&a));
        prop_assert!(uica_estimate(&ab) <= ab.len() as f64 + 1e-9);
    }

    /// Instruction execution is deterministic.
    #[test]
    fn execution_is_deterministic(
        (machine, prog) in arb_machine().prop_flat_map(|m| {
            let mc = m.clone();
            arb_program(mc, 20).prop_map(move |p| (m.clone(), p))
        }),
    ) {
        for st in machine.initial_states() {
            prop_assert_eq!(machine.run(&prog, st), machine.run(&prog, st));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A correct kernel stays correct under appending flag-neutral no-ops
    /// (`cmp` does not move data, so appending one preserves sortedness).
    #[test]
    fn appending_cmp_preserves_correctness(dst in 0u8..3, src in 0u8..3) {
        prop_assume!(dst < src);
        let machine = Machine::new(3, 1, IsaMode::Cmov);
        let mut prog = machine
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmp r1 r2; cmovg r2 r1; cmovg r1 s1",
            )
            .expect("reference kernel parses");
        prop_assert!(machine.is_correct(&prog));
        prog.push(Instr::new(Op::Cmp, Reg::new(dst), Reg::new(src)));
        prop_assert!(machine.is_correct(&prog));
    }
}
