//! JSON round-trip tests for the serde feature (`--features serde`).

#![cfg(feature = "serde")]

use sortsynth_isa::{Instr, IsaMode, Machine, MachineState, Op, Program, Reg};

#[test]
fn instr_round_trips_through_json() {
    let instr = Instr::new(Op::Cmovl, Reg::new(2), Reg::new(3));
    let json = serde_json::to_string(&instr).expect("serialize");
    let back: Instr = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, instr);
}

#[test]
fn program_round_trips_through_json() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let prog = machine
        .parse_program("mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1")
        .expect("parses");
    let json = serde_json::to_string(&prog).expect("serialize");
    let back: Program = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, prog);
    assert_eq!(machine.format_program(&back), machine.format_program(&prog));
}

#[test]
fn machine_round_trips_through_json() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let machine = Machine::new(4, 2, mode);
        let json = serde_json::to_string(&machine).expect("serialize");
        let back: Machine = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, machine);
    }
}

#[test]
fn machine_state_round_trips_through_json() {
    let mut st = MachineState::from_values(&[3, 1, 2, 0]);
    st.set_flags(true, false);
    let json = serde_json::to_string(&st).expect("serialize");
    let back: MachineState = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, st);
    assert!(back.lt_flag());
}
