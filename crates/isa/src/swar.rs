//! SWAR batch stepping of packed machine states.
//!
//! The search expands one *action* across an entire set of register
//! assignments at a time, so the per-assignment work is the same
//! instruction applied to different packed `u64`s. [`BatchStepper`]
//! exploits that: it resolves the opcode and operand shifts once per
//! action, then sweeps the span with a branchless lane kernel in unrolled
//! chunks of [`LANES`] states — one opcode dispatch per span instead of
//! one per state, no data-dependent branch on the flag bits (the scalar
//! `cmovl`/`cmovg` branch is ~50% mispredicted on real search states),
//! and enough independent lanes in flight to cover the ALU latency.
//!
//! Every kernel is bit-for-bit equivalent to [`MachineState::exec`] on
//! *arbitrary* bit patterns — including states with both flag bits set
//! and with the unused bits 62–63 populated, which `exec` preserves even
//! though the search never constructs them. The property test in
//! `sortsynth-search` pins this equivalence over random batches.

use crate::instr::{Instr, Op};
use crate::state::MachineState;

/// Unroll factor of the batch loop: states stepped per pass.
pub const LANES: usize = 8;

const LT_BIT: u64 = 1 << 60;
const GT_BIT: u64 = 1 << 61;
const FLAGS: u64 = LT_BIT | GT_BIT;
const NIB: u64 = 0xF;

/// One action's step kernel, pre-resolved for batch application.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{BatchStepper, Instr, MachineState, Op, Reg};
///
/// let instr = Instr::new(Op::Min, Reg::new(0), Reg::new(1));
/// let batch = [
///     MachineState::from_values(&[3, 1]),
///     MachineState::from_values(&[0, 2]),
/// ];
/// let mut out = Vec::new();
/// BatchStepper::new(instr).append_stepped(&batch, &mut out);
/// assert_eq!(out, batch.map(|s| s.step(instr)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchStepper {
    op: Op,
    /// Bit offset of the destination register's nibble.
    d: u32,
    /// Bit offset of the source register's nibble.
    s: u32,
}

impl BatchStepper {
    /// Resolves `instr` into a reusable batch kernel.
    pub fn new(instr: Instr) -> Self {
        BatchStepper {
            op: instr.op,
            d: 4 * instr.dst.index() as u32,
            s: 4 * instr.src.index() as u32,
        }
    }

    /// Steps one state through the resolved kernel (scalar convenience;
    /// equals `state.step(instr)`).
    #[inline]
    pub fn step_one(&self, state: MachineState) -> MachineState {
        let (d, s) = (self.d, self.s);
        let x = state.bits();
        MachineState::from_bits(match self.op {
            Op::Mov => mov(x, d, s),
            Op::Cmp => cmp(x, d, s),
            Op::Cmovl => cmov(x, d, s, 60),
            Op::Cmovg => cmov(x, d, s, 61),
            Op::Min => min(x, d, s),
            Op::Max => max(x, d, s),
        })
    }

    /// Steps every state in `batch`, appending the successors to `out` in
    /// order. Returns the number of [`LANES`]-wide passes performed
    /// (counting a final partial chunk as one pass), for the
    /// `swar_batches` search counter.
    #[inline]
    pub fn append_stepped(&self, batch: &[MachineState], out: &mut Vec<MachineState>) -> u64 {
        let (d, s) = (self.d, self.s);
        match self.op {
            Op::Mov => run(batch, out, |x| mov(x, d, s)),
            Op::Cmp => run(batch, out, |x| cmp(x, d, s)),
            Op::Cmovl => run(batch, out, |x| cmov(x, d, s, 60)),
            Op::Cmovg => run(batch, out, |x| cmov(x, d, s, 61)),
            Op::Min => run(batch, out, |x| min(x, d, s)),
            Op::Max => run(batch, out, |x| max(x, d, s)),
        }
    }
}

/// Re-derives a successor span from its parent span and the edge's
/// instruction: clears `out` and steps every parent assignment through the
/// action's SWAR kernel. The lean cross-shard routing path uses this
/// owner-side — a routed candidate carries only `(key, g, parent, action)`,
/// and the owning shard reconstructs the raw (pre-canonicalization)
/// assignments from the parent it already holds. Returns the SWAR pass
/// count for the `swar_batches` counter.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{rederive_span, Instr, MachineState, Op, Reg};
///
/// let instr = Instr::new(Op::Max, Reg::new(0), Reg::new(1));
/// let parent = [MachineState::from_values(&[1, 3]), MachineState::from_values(&[2, 0])];
/// let mut out = Vec::new();
/// rederive_span(instr, &parent, &mut out);
/// assert_eq!(out, parent.map(|s| s.step(instr)));
/// ```
pub fn rederive_span(instr: Instr, parent: &[MachineState], out: &mut Vec<MachineState>) -> u64 {
    out.clear();
    BatchStepper::new(instr).append_stepped(parent, out)
}

/// Sweeps `batch` through `f` in one pass. The single trusted-length
/// `extend` of a branch-free body is the shape LLVM's auto-vectorizer
/// turns into [`LANES`]-state-wide SIMD iterations (verified on the
/// reference container: the sweep compiles to packed-integer code, where
/// the scalar `step` loop's flag branch forced one state at a time).
#[inline(always)]
fn run(batch: &[MachineState], out: &mut Vec<MachineState>, f: impl Fn(u64) -> u64) -> u64 {
    out.extend(batch.iter().map(|a| MachineState::from_bits(f(a.bits()))));
    (batch.len() as u64).div_ceil(LANES as u64)
}

/// `mov dst, src`: replace the dst nibble with the src nibble.
#[inline(always)]
fn mov(x: u64, d: u32, s: u32) -> u64 {
    (x & !(NIB << d)) | (((x >> s) & NIB) << d)
}

/// `cmp dst, src`: rewrite the two flag bits from the nibble comparison.
/// Nibbles are in `0..=15`, so `a - b` underflows (sign bit set after the
/// arithmetic shift down) exactly when `a < b`.
#[inline(always)]
fn cmp(x: u64, d: u32, s: u32) -> u64 {
    let a = (x >> d) & NIB;
    let b = (x >> s) & NIB;
    let lt = a.wrapping_sub(b) >> 63;
    let gt = b.wrapping_sub(a) >> 63;
    (x & !FLAGS) | (lt << 60) | (gt << 61)
}

/// `cmovl`/`cmovg dst, src`: select src or dst nibble under an all-ones /
/// all-zeros mask derived from the flag bit — no data-dependent branch.
#[inline(always)]
fn cmov(x: u64, d: u32, s: u32, flag_bit: u32) -> u64 {
    let m = 0u64.wrapping_sub((x >> flag_bit) & 1);
    let v = ((x >> s) & m | (x >> d) & !m) & NIB;
    (x & !(NIB << d)) | (v << d)
}

/// `min dst, src`: branchless nibble minimum into dst.
#[inline(always)]
fn min(x: u64, d: u32, s: u32) -> u64 {
    let a = (x >> d) & NIB;
    let b = (x >> s) & NIB;
    let m = 0u64.wrapping_sub(a.wrapping_sub(b) >> 63); // all-ones iff a < b
    let v = (a & m) | (b & !m);
    (x & !(NIB << d)) | (v << d)
}

/// `max dst, src`: branchless nibble maximum into dst.
#[inline(always)]
fn max(x: u64, d: u32, s: u32) -> u64 {
    let a = (x >> d) & NIB;
    let b = (x >> s) & NIB;
    let m = 0u64.wrapping_sub(b.wrapping_sub(a) >> 63); // all-ones iff a > b
    let v = (a & m) | (b & !m);
    (x & !(NIB << d)) | (v << d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{IsaMode, Machine, Reg};

    fn i(op: Op, dst: u8, src: u8) -> Instr {
        Instr::new(op, Reg::new(dst), Reg::new(src))
    }

    /// Deterministic xorshift so the exhaustive-ish sweep needs no deps.
    fn xorshift(seed: &mut u64) -> u64 {
        let mut x = *seed;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *seed = x;
        x
    }

    #[test]
    fn kernels_match_scalar_exec_on_arbitrary_bits() {
        // Arbitrary bit patterns: both flags set at once and bits 62–63
        // populated are representable even though the search never makes
        // them; the kernels must still agree with `exec`.
        let mut seed = 0x5EED_CAFE_F00D_0001u64;
        for op in [Op::Mov, Op::Cmp, Op::Cmovl, Op::Cmovg, Op::Min, Op::Max] {
            for dst in 0..4u8 {
                for src in 0..4u8 {
                    let instr = i(op, dst, src);
                    let stepper = BatchStepper::new(instr);
                    for _ in 0..256 {
                        let st = MachineState::from_bits(xorshift(&mut seed));
                        assert_eq!(
                            stepper.step_one(st),
                            st.step(instr),
                            "{instr:?} diverged on {:#018x}",
                            st.bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_output_matches_scalar_order_and_passes() {
        let mut seed = 0xDEAD_BEEF_0BAD_F00Du64;
        for mode in [IsaMode::Cmov, IsaMode::MinMax] {
            let machine = Machine::new(3, 1, mode);
            for instr in machine.actions() {
                for len in [0usize, 1, 7, 8, 9, 16, 37] {
                    let batch: Vec<MachineState> = (0..len)
                        .map(|_| MachineState::from_bits(xorshift(&mut seed)))
                        .collect();
                    let mut out = vec![MachineState::from_values(&[9])];
                    let passes = BatchStepper::new(instr).append_stepped(&batch, &mut out);
                    assert_eq!(out[0], MachineState::from_values(&[9]), "prefix kept");
                    let expect: Vec<MachineState> = batch.iter().map(|s| s.step(instr)).collect();
                    assert_eq!(out[1..], expect[..], "{instr:?} len {len}");
                    assert_eq!(passes, (len as u64).div_ceil(LANES as u64));
                }
            }
        }
    }
}
