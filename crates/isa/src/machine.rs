//! Machine configuration: register file, ISA selection, action sets,
//! execution, and correctness checking.

use std::fmt;

use crate::instr::{Instr, Op};
use crate::perm::permutations;
use crate::state::{MachineState, MAX_REGS};

/// Index of a register in the combined `r1..rn, s1..sm` register file.
///
/// Indices `0..n` are the value registers `r1..rn`; indices `n..n+m` are the
/// scratch registers `s1..sm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its file index.
    pub fn new(index: u8) -> Self {
        Reg(index)
    }

    /// The register-file index.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Which of the paper's two instruction sets a [`Machine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaMode {
    /// `mov`/`cmp`/`cmovl`/`cmovg` over general-purpose registers (§2.2).
    Cmov,
    /// `mov`/`min`/`max` over vector registers (§5.4).
    MinMax,
}

impl IsaMode {
    /// The opcodes belonging to this ISA.
    pub fn ops(self) -> &'static [Op] {
        match self {
            IsaMode::Cmov => &[Op::Mov, Op::Cmp, Op::Cmovl, Op::Cmovg],
            IsaMode::MinMax => &[Op::Mov, Op::Min, Op::Max],
        }
    }

    /// The canonical wire name of this mode — the CLI's `--isa` value and
    /// the serialized representation used by the cache and service layers.
    pub fn wire_name(self) -> &'static str {
        match self {
            IsaMode::Cmov => "cmov",
            IsaMode::MinMax => "minmax",
        }
    }

    /// Parses a [`Self::wire_name`].
    pub fn from_wire_name(name: &str) -> Option<IsaMode> {
        match name {
            "cmov" => Some(IsaMode::Cmov),
            "minmax" => Some(IsaMode::MinMax),
            _ => None,
        }
    }
}

/// The synthesis machine: `n` value registers, `m` scratch registers, and an
/// ISA.
///
/// All synthesis back-ends in the workspace are parameterized by a `Machine`.
/// It provides the canonical *action set* (the instructions a synthesizer may
/// emit, after the paper's symmetry restrictions), program execution over the
/// packed [`MachineState`], and the permutation-test-suite correctness check
/// of §2.3.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{IsaMode, Machine};
///
/// let machine = Machine::new(3, 1, IsaMode::Cmov);
/// assert_eq!(machine.num_regs(), 4);
/// assert_eq!(machine.initial_states().len(), 6); // 3! permutations
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Machine {
    n: u8,
    scratch: u8,
    mode: IsaMode,
}

impl Machine {
    /// Creates a machine sorting `n` values with `scratch` scratch registers.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, or `n + scratch` exceeds the packed-state register
    /// limit, or `n > 14` (values must fit in a nibble).
    pub fn new(n: u8, scratch: u8, mode: IsaMode) -> Self {
        assert!(n >= 2, "need at least two values to sort");
        assert!(n <= 14, "values 1..=n must fit in a nibble");
        assert!(
            n + scratch <= MAX_REGS,
            "register file exceeds packed-state capacity"
        );
        Machine { n, scratch, mode }
    }

    /// Number of values to sort.
    pub fn n(&self) -> u8 {
        self.n
    }

    /// Number of scratch registers.
    pub fn scratch(&self) -> u8 {
        self.scratch
    }

    /// The instruction set in use.
    pub fn mode(&self) -> IsaMode {
        self.mode
    }

    /// Total registers (`n + scratch`).
    pub fn num_regs(&self) -> u8 {
        self.n + self.scratch
    }

    /// Iterator over all register indices.
    pub fn regs(&self) -> impl Iterator<Item = Reg> {
        (0..self.num_regs()).map(Reg::new)
    }

    /// The initial machine state for one input permutation: `r_i` holds
    /// `perm[i]`, scratch registers hold 0, flags unset.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != n`.
    pub fn initial_state(&self, perm: &[u8]) -> MachineState {
        assert_eq!(perm.len(), self.n as usize, "permutation length mismatch");
        let mut values = perm.to_vec();
        values.resize(self.num_regs() as usize, 0);
        MachineState::from_values(&values)
    }

    /// Initial states for all `n!` permutations of `1..=n` — the paper's
    /// complete correctness test suite (§2.3).
    pub fn initial_states(&self) -> Vec<MachineState> {
        permutations(self.n)
            .iter()
            .map(|p| self.initial_state(p))
            .collect()
    }

    /// Whether the value registers of `state` hold `1..=n` in order — i.e.
    /// this register assignment is sorted.
    #[inline]
    pub fn is_sorted(&self, state: MachineState) -> bool {
        (0..self.n).all(|i| state.reg(Reg::new(i)) == i + 1)
    }

    /// Runs `prog` on `state`, returning the final state.
    pub fn run(&self, prog: &[Instr], mut state: MachineState) -> MachineState {
        for &instr in prog {
            state.exec(instr);
        }
        state
    }

    /// Checks correctness on the full permutation test suite (§2.3):
    /// `prog` must sort every permutation of `1..=n`.
    pub fn is_correct(&self, prog: &[Instr]) -> bool {
        self.initial_states()
            .into_iter()
            .all(|st| self.is_sorted(self.run(prog, st)))
    }

    /// Returns the inputs (as permutations of `1..=n`) that `prog` fails to
    /// sort. Empty iff [`Self::is_correct`].
    pub fn counterexamples(&self, prog: &[Instr]) -> Vec<Vec<u8>> {
        permutations(self.n)
            .into_iter()
            .filter(|p| !self.is_sorted(self.run(prog, self.initial_state(p))))
            .collect()
    }

    /// The canonical action set used by the enumerative search (§3.2): every
    /// instruction of the ISA over the register file, except
    ///
    /// * no instruction with `dst == src` (self-moves are no-ops, `cmp x x`
    ///   is nonsensical), and
    /// * `cmp` only with `dst.index() < src.index()` — the paper's symmetry
    ///   restriction exploiting the `lt`/`gt` flag swap,
    /// * `min`/`max` likewise only with `dst.index() != src.index()` (both
    ///   operand orders are kept: destinations differ, so they are not
    ///   symmetric).
    pub fn actions(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        for &op in self.mode.ops() {
            for dst in self.regs() {
                for src in self.regs() {
                    if dst == src {
                        continue;
                    }
                    if op == Op::Cmp && dst.index() > src.index() {
                        continue;
                    }
                    out.push(Instr::new(op, dst, src));
                }
            }
        }
        out
    }

    /// The unrestricted instruction space `ops × regs × regs` (used by the
    /// stochastic and MCTS baselines, which the paper runs without the
    /// enumerative symmetry restrictions). Includes `dst == src`.
    pub fn all_instrs(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        for &op in self.mode.ops() {
            for dst in self.regs() {
                for src in self.regs() {
                    out.push(Instr::new(op, dst, src));
                }
            }
        }
        out
    }

    /// `log10` of the size of the program space of length `len`:
    /// `(|ops| · (n+m)²)^len`, the formula of §5.1.
    pub fn program_space_log10(&self, len: u32) -> f64 {
        let per_step = self.mode.ops().len() as f64 * (self.num_regs() as f64).powi(2);
        len as f64 * per_step.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_layout() {
        let m = Machine::new(3, 2, IsaMode::Cmov);
        let st = m.initial_state(&[3, 1, 2]);
        assert_eq!(st.values(5), vec![3, 1, 2, 0, 0]);
        assert!(!st.lt_flag() && !st.gt_flag());
    }

    #[test]
    fn sortedness() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        assert!(m.is_sorted(m.initial_state(&[1, 2, 3])));
        assert!(!m.is_sorted(m.initial_state(&[2, 1, 3])));
        // Scratch contents are irrelevant to sortedness.
        let mut st = m.initial_state(&[1, 2, 3]);
        st.set_reg(Reg::new(3), 7);
        assert!(m.is_sorted(st));
    }

    #[test]
    fn cas_snippet_is_correct_for_n2() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let prog = m
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap();
        assert!(m.is_correct(&prog));
        assert!(m.counterexamples(&prog).is_empty());
    }

    #[test]
    fn incorrect_program_yields_counterexamples() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        // `mov r1 r2` erases r1's value: [1,2] becomes [2,2] and [2,1]
        // becomes [1,1], so both permutations are counterexamples.
        let prog = m.parse_program("mov r1 r2").unwrap();
        assert!(!m.is_correct(&prog));
        assert_eq!(m.counterexamples(&prog), vec![vec![1, 2], vec![2, 1]]);
        // The empty program fails exactly on the unsorted permutation.
        assert_eq!(m.counterexamples(&[]), vec![vec![2, 1]]);
    }

    #[test]
    fn minmax_cas_is_correct_for_n2() {
        let m = Machine::new(2, 1, IsaMode::MinMax);
        // mov s1 r1; min r1 r2; max r2 s1 — the three-instruction CAS.
        let prog = m.parse_program("mov s1 r1; min r1 r2; max r2 s1").unwrap();
        assert!(m.is_correct(&prog));
    }

    #[test]
    fn action_set_counts() {
        // n=3, m=1, cmov: mov/cmovl/cmovg over 4*3 ordered pairs each, plus
        // cmp over C(4,2)=6 unordered pairs.
        let m = Machine::new(3, 1, IsaMode::Cmov);
        assert_eq!(m.actions().len(), 3 * 12 + 6);
        assert_eq!(m.all_instrs().len(), 4 * 16);
        // Every cmp action respects the operand ordering restriction.
        assert!(m
            .actions()
            .iter()
            .filter(|i| i.op == Op::Cmp)
            .all(|i| i.dst.index() < i.src.index()));
    }

    #[test]
    fn program_space_formula_matches_paper_table() {
        // §5.1: for n=3 (m=1), optimal size 11 → ≈ 10^19.9.
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let log = m.program_space_log10(11);
        assert!((log - 19.9).abs() < 0.1, "got {log}");
        // n=4, len 20 → ≈ 10^40.0.
        let m4 = Machine::new(4, 1, IsaMode::Cmov);
        let log4 = m4.program_space_log10(20);
        assert!((log4 - 40.0).abs() < 0.1, "got {log4}");
    }

    #[test]
    #[should_panic(expected = "permutation length mismatch")]
    fn initial_state_validates_length() {
        Machine::new(3, 1, IsaMode::Cmov).initial_state(&[1, 2]);
    }
}
