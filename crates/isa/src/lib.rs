//! Instruction model, semantics, and cost models for sorting-kernel synthesis.
//!
//! This crate defines the machine model of Ullrich & Hack, *Synthesis of
//! Sorting Kernels* (CGO 2025), §2.2: a register machine with
//!
//! * value registers `r1..rn` holding the numbers to be sorted,
//! * scratch registers `s1..sm` for swapping (initially zero),
//! * comparison flags `lt` and `gt` (initially unset),
//!
//! and two instruction sets:
//!
//! * the **cmov ISA** — `mov`, `cmp`, `cmovl`, `cmovg` — modelling x86
//!   general-purpose-register kernels, and
//! * the **min/max ISA** — `mov`, `min`, `max` — modelling SSE
//!   `movdqa`/`pminsd`/`pmaxsd` vector kernels (§5.4).
//!
//! A *sorting kernel* for length `n` is a straight-line program over one of
//! these ISAs that, run on any initial assignment of `r1..rn`, leaves those
//! registers sorted ascending. Because kernels are constant-free they cannot
//! discriminate inputs, so correctness on the `n!` permutations of `1..n`
//! implies correctness on all inputs (§2.3).
//!
//! # Example
//!
//! Synthesis front-ends build on [`Machine`], which owns the configuration
//! (`n`, scratch count, ISA) and provides execution and correctness checking:
//!
//! ```
//! use sortsynth_isa::{Machine, IsaMode, Program};
//!
//! let machine = Machine::new(2, 1, IsaMode::Cmov);
//! // The four-instruction compare-and-swap from the paper's §2.2 example.
//! let prog: Program = machine.parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")?;
//! assert!(machine.is_correct(&prog));
//! # Ok::<(), sortsynth_isa::ParseProgramError>(())
//! ```

pub mod cost;
pub mod equiv;
pub mod instr;
pub mod machine;
pub mod perm;
pub mod pipeline;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod state;
pub mod swar;

pub use cost::{
    critical_path, sampling_score, uica_estimate, weighted_score, CostWeights, InstrMix,
};
pub use equiv::{equivalent, sorts_all_zero_one, zero_one_counterexample};
pub use instr::{Instr, Op, ParseProgramError, Program};
pub use machine::{IsaMode, Machine, Reg};
pub use perm::{factorial, permutations};
pub use pipeline::{analyze, simulate_cycles, PipelineReport, ThroughputModel};
pub use state::MachineState;
pub use swar::{rederive_span, BatchStepper, LANES as SWAR_LANES};
