//! A uiCA-style out-of-order pipeline model for kernel throughput
//! prediction.
//!
//! The paper's artifact predicts kernel throughput with uiCA and LLVM-MCA
//! after benchmarking, and §5.4 attributes the synthesized min/max kernels'
//! speedup to "a better dependence structure that allows for higher
//! instruction-level parallelism". This module reproduces that analysis
//! step: µop decomposition with register-move elimination, a greedy
//! list-scheduler over execution ports, and steady-state cycles-per-
//! iteration estimation for a kernel executed back-to-back.
//!
//! The default machine parameters approximate a Zen 3 core (the paper's
//! Ryzen 7 5800X testbed): 4-wide issue, move elimination at rename, ALU
//! µops on four ports, conditional moves and vector min/max on two.

use crate::instr::{Instr, Op};

/// Number of modelled execution ports.
pub const NUM_PORTS: usize = 4;

/// Machine parameters for the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// µops issued per cycle.
    pub issue_width: u32,
    /// Whether register-register moves are eliminated at rename (consume an
    /// issue slot but no execution port and no latency).
    pub move_elimination: bool,
    /// Latency in cycles of `cmp` / `cmovcc` / `pmin`/`pmax`.
    pub alu_latency: u32,
}

impl Default for ThroughputModel {
    /// Zen-3-like parameters.
    fn default() -> Self {
        ThroughputModel {
            issue_width: 4,
            move_elimination: true,
            alu_latency: 1,
        }
    }
}

/// Which ports a µop may execute on, as a bitmask over [`NUM_PORTS`].
fn port_mask(op: Op) -> u8 {
    match op {
        // cmp runs on any ALU port.
        Op::Cmp => 0b1111,
        // cmov and vector min/max run on two ports.
        Op::Cmovl | Op::Cmovg | Op::Min | Op::Max => 0b0011,
        // mov is handled separately (eliminated or any port).
        Op::Mov => 0b1111,
    }
}

/// Result of a throughput analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Steady-state cycles per kernel iteration.
    pub cycles_per_iteration: f64,
    /// Latency-weighted critical path of one iteration (cycles).
    pub critical_path: u32,
    /// Port-pressure bound: µops on the most-contended port per iteration,
    /// divided by that port's capacity (1 µop/cycle).
    pub port_bound: f64,
    /// Issue-width bound: total issue slots per iteration / width.
    pub issue_bound: f64,
    /// Whether throughput is limited by the dependence structure (latency)
    /// rather than by ports or issue width.
    pub latency_bound: bool,
}

/// Predicts steady-state throughput of `prog` executed back-to-back
/// (`iterations` consecutive copies with loop-carried register
/// dependences), using a greedy earliest-fit list scheduler.
///
/// Use [`analyze`] for the derived per-iteration report.
pub fn simulate_cycles(prog: &[Instr], iterations: u32, model: &ThroughputModel) -> u64 {
    if prog.is_empty() || iterations == 0 {
        return 0;
    }
    // Completion cycle of the last write to each register / the flags.
    let mut reg_ready = [0u64; crate::state::MAX_REGS as usize + 1];
    const FLAGS: usize = crate::state::MAX_REGS as usize;
    // Next free cycle per port (a port executes one µop per cycle; we track
    // how many µops are bound to each cycle per port).
    let mut port_busy: Vec<[u32; NUM_PORTS]> = Vec::new();
    // Issue slots consumed per cycle.
    let mut issued: Vec<u32> = Vec::new();
    let mut issue_cursor: u64 = 0;
    let mut slots_this_cycle: u32 = 0;
    let mut makespan: u64 = 0;

    let busy_at = |port_busy: &mut Vec<[u32; NUM_PORTS]>, cycle: u64| -> usize {
        let idx = cycle as usize;
        if port_busy.len() <= idx {
            port_busy.resize(idx + 1, [0; NUM_PORTS]);
        }
        idx
    };

    for _ in 0..iterations {
        for instr in prog {
            // In-order issue: `issue_width` µops per cycle.
            if slots_this_cycle >= model.issue_width {
                issue_cursor += 1;
                slots_this_cycle = 0;
            }
            slots_this_cycle += 1;
            if issued.len() <= issue_cursor as usize {
                issued.resize(issue_cursor as usize + 1, 0);
            }
            issued[issue_cursor as usize] += 1;

            // Operand readiness (true dependences only).
            let mut ready = issue_cursor;
            let dep = |r: usize, ready: &mut u64| *ready = (*ready).max(reg_ready[r]);
            dep(instr.src.index() as usize, &mut ready);
            if instr.op.reads_dst() {
                dep(instr.dst.index() as usize, &mut ready);
            }
            if instr.op.reads_flags() {
                dep(FLAGS, &mut ready);
            }

            let eliminated = instr.op == Op::Mov && model.move_elimination;
            let done = if eliminated {
                // Rename-time copy: result available as soon as the source.
                ready
            } else {
                // Find the earliest cycle >= ready with a free allowed port.
                let mask = port_mask(instr.op);
                let mut cycle = ready;
                loop {
                    let idx = busy_at(&mut port_busy, cycle);
                    let mut placed = false;
                    for (p, slot) in port_busy[idx].iter_mut().enumerate() {
                        if mask & (1 << p) != 0 && *slot == 0 {
                            *slot = 1;
                            placed = true;
                            break;
                        }
                    }
                    if placed {
                        break;
                    }
                    cycle += 1;
                }
                cycle + model.alu_latency as u64
            };

            if instr.op.writes_dst() {
                reg_ready[instr.dst.index() as usize] = done;
            }
            if instr.op.writes_flags() {
                reg_ready[FLAGS] = done;
            }
            makespan = makespan.max(done);
        }
    }
    makespan.max(issue_cursor + 1)
}

/// Full throughput report for one kernel iteration: the steady-state
/// cycles-per-iteration (measured over a long run, subtracting warm-up) and
/// the individual bounds.
pub fn analyze(prog: &[Instr], model: &ThroughputModel) -> PipelineReport {
    const WARM: u32 = 8;
    const RUN: u32 = 64;
    let short = simulate_cycles(prog, WARM, model);
    let long = simulate_cycles(prog, WARM + RUN, model);
    let cycles_per_iteration = (long - short) as f64 / RUN as f64;

    // Bounds.
    let critical_path = crate::cost::critical_path(prog);
    let total_slots = prog.len() as u32;
    // Per-port load with each µop spread evenly over its port group; the
    // most-loaded port lower-bounds cycles per iteration.
    let port_bound = (0..NUM_PORTS)
        .map(|p| {
            let mask_size = |op: Op| port_mask(op).count_ones();
            let load: f64 = prog
                .iter()
                .filter(|i| !(i.op == Op::Mov && model.move_elimination))
                .filter(|i| port_mask(i.op) & (1 << p) != 0)
                .map(|i| 1.0 / mask_size(i.op) as f64)
                .sum();
            load
        })
        .fold(0.0f64, f64::max);
    let issue_bound = total_slots as f64 / model.issue_width as f64;

    let report = PipelineReport {
        cycles_per_iteration,
        critical_path,
        port_bound,
        issue_bound,
        latency_bound: cycles_per_iteration > port_bound.max(issue_bound) + 0.25,
    };
    sortsynth_obs::debug!(
        "# pipeline: {} instrs, {:.2} cyc/iter (critical path {}, port bound {:.2}, issue bound {:.2})",
        prog.len(),
        report.cycles_per_iteration,
        report.critical_path,
        report.port_bound,
        report.issue_bound
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{IsaMode, Machine, Reg};

    fn i(op: Op, dst: u8, src: u8) -> Instr {
        Instr::new(op, Reg::new(dst), Reg::new(src))
    }

    #[test]
    fn empty_program_costs_nothing() {
        let model = ThroughputModel::default();
        assert_eq!(simulate_cycles(&[], 100, &model), 0);
        assert_eq!(simulate_cycles(&[i(Op::Cmp, 0, 1)], 0, &model), 0);
    }

    #[test]
    fn independent_uops_are_limited_by_ports() {
        // Four independent cmovs per iteration on two ports: 2 cycles/iter.
        let model = ThroughputModel::default();
        let prog = vec![
            i(Op::Min, 0, 4),
            i(Op::Min, 1, 5),
            i(Op::Min, 2, 6),
            i(Op::Min, 3, 7),
        ];
        // Loop-carried: each iteration's min depends on the previous one's
        // result in the same register, so latency also gives 1/iter… port
        // pressure (4 uops / 2 ports) dominates at 2/iter.
        let report = analyze(&prog, &model);
        assert!(
            (report.cycles_per_iteration - 2.0).abs() < 0.3,
            "got {}",
            report.cycles_per_iteration
        );
        assert!((report.port_bound - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependence_chain_is_latency_bound() {
        // A serial chain through r0: one cycle per instruction per
        // iteration regardless of width.
        let model = ThroughputModel::default();
        let prog = vec![i(Op::Min, 0, 1), i(Op::Min, 0, 2), i(Op::Min, 0, 3)];
        let report = analyze(&prog, &model);
        assert!(
            report.cycles_per_iteration >= 2.8,
            "got {}",
            report.cycles_per_iteration
        );
        assert_eq!(report.critical_path, 3);
        assert!(report.latency_bound);
    }

    #[test]
    fn eliminated_moves_cost_no_ports() {
        let model = ThroughputModel::default();
        let movs = vec![i(Op::Mov, 4, 0), i(Op::Mov, 5, 1), i(Op::Mov, 6, 2)];
        let report = analyze(&movs, &model);
        assert!((report.port_bound - 0.0).abs() < 1e-9);
        // Still bounded by issue width (3 slots / 4-wide).
        assert!(report.cycles_per_iteration <= 1.1);

        // Without elimination, movs occupy ports.
        let no_elim = ThroughputModel {
            move_elimination: false,
            ..ThroughputModel::default()
        };
        let report2 = analyze(&movs, &no_elim);
        assert!(report2.port_bound > 0.0);
    }

    #[test]
    fn synthesized_minmax_kernel_has_better_ilp_than_network() {
        // The §5.4 claim: the 8-instruction synthesized min/max kernel has
        // a shorter critical path / better throughput than the
        // 9-instruction network implementation.
        let machine = Machine::new(3, 1, IsaMode::MinMax);
        let synth = machine
            .parse_program(
                "mov s1 r2; min s1 r3; max r3 r2; mov r2 r3; min r2 r1; \
                 max r3 r1; max r2 s1; min r1 s1",
            )
            .expect("reference kernel parses");
        let network = machine
            .parse_program(
                "mov s1 r1; min r1 r2; max r2 s1; mov s1 r2; min r2 r3; \
                 max r3 s1; mov s1 r1; min r1 r2; max r2 s1",
            )
            .expect("network kernel parses");
        let model = ThroughputModel::default();
        let synth_report = analyze(&synth, &model);
        let network_report = analyze(&network, &model);
        assert!(
            synth_report.cycles_per_iteration <= network_report.cycles_per_iteration,
            "synth {} vs network {}",
            synth_report.cycles_per_iteration,
            network_report.cycles_per_iteration
        );
    }

    #[test]
    fn throughput_never_beats_any_bound() {
        let machine = Machine::new(3, 1, IsaMode::Cmov);
        let model = ThroughputModel::default();
        for text in [
            "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1",
            "cmp r1 r2; cmp r1 r3; cmp r2 r3",
            "mov s1 r1; mov r1 r2; mov r2 s1",
        ] {
            let prog = machine.parse_program(text).expect("test program parses");
            let report = analyze(&prog, &model);
            assert!(
                report.cycles_per_iteration + 1e-9 >= report.port_bound.min(report.issue_bound)
            );
        }
    }
}
