//! Hand-written `Serialize`/`Deserialize` impls (feature `serde`).
//!
//! The vendored `serde` (see `vendor/README.md`) has no proc-macro derive,
//! so the wire representations are spelled out here. They are also the
//! stable contract for the kernel cache's on-disk entries and the service
//! wire protocol, so changes here are format changes:
//!
//! * [`Op`] / [`IsaMode`] — lower-case mnemonic strings (`"mov"`, `"cmov"`).
//! * [`Reg`] — the register-file index as an integer.
//! * [`Instr`] — `{"op": .., "dst": .., "src": ..}`.
//! * [`Machine`] — `{"n": .., "scratch": .., "mode": ..}`.
//! * [`MachineState`] — the packed `u64` bit representation.
//!
//! `Program` (= `Vec<Instr>`) serializes through the blanket `Vec` impl.

use serde::{Deserialize, Error, Serialize, Value};

use crate::instr::{Instr, Op};
use crate::machine::{IsaMode, Machine, Reg};
use crate::state::MachineState;

impl Serialize for Op {
    fn serialize(&self) -> Value {
        Value::Str(self.mnemonic().to_string())
    }
}

impl Deserialize for Op {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let text = String::deserialize(value)?;
        match text.as_str() {
            "mov" => Ok(Op::Mov),
            "cmp" => Ok(Op::Cmp),
            "cmovl" => Ok(Op::Cmovl),
            "cmovg" => Ok(Op::Cmovg),
            "min" => Ok(Op::Min),
            "max" => Ok(Op::Max),
            other => Err(Error::new(format!("unknown opcode `{other}`"))),
        }
    }
}

impl Serialize for Reg {
    fn serialize(&self) -> Value {
        self.index().serialize()
    }
}

impl Deserialize for Reg {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        u8::deserialize(value).map(Reg::new)
    }
}

impl Serialize for Instr {
    fn serialize(&self) -> Value {
        Value::map([
            ("op", self.op.serialize()),
            ("dst", self.dst.serialize()),
            ("src", self.src.serialize()),
        ])
    }
}

impl Deserialize for Instr {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Instr {
            op: Op::deserialize(value.required("op")?)?,
            dst: Reg::deserialize(value.required("dst")?)?,
            src: Reg::deserialize(value.required("src")?)?,
        })
    }
}

impl Serialize for IsaMode {
    fn serialize(&self) -> Value {
        Value::Str(self.wire_name().to_string())
    }
}

impl Deserialize for IsaMode {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let text = String::deserialize(value)?;
        IsaMode::from_wire_name(&text)
            .ok_or_else(|| Error::new(format!("unknown ISA mode `{text}`")))
    }
}

impl Serialize for Machine {
    fn serialize(&self) -> Value {
        Value::map([
            ("n", self.n().serialize()),
            ("scratch", self.scratch().serialize()),
            ("mode", self.mode().serialize()),
        ])
    }
}

impl Deserialize for Machine {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n = u8::deserialize(value.required("n")?)?;
        let scratch = u8::deserialize(value.required("scratch")?)?;
        let mode = IsaMode::deserialize(value.required("mode")?)?;
        if !(2..=14).contains(&n) || n + scratch > crate::state::MAX_REGS {
            return Err(Error::new(format!(
                "machine n={n} scratch={scratch} out of range"
            )));
        }
        Ok(Machine::new(n, scratch, mode))
    }
}

impl Serialize for MachineState {
    fn serialize(&self) -> Value {
        self.bits().serialize()
    }
}

impl Deserialize for MachineState {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        u64::deserialize(value).map(MachineState::from_bits)
    }
}
