//! Permutation utilities for the correctness test suite.

/// `n!` as a `u64`.
///
/// # Panics
///
/// Panics on overflow (`n > 20`).
///
/// # Examples
///
/// ```
/// assert_eq!(sortsynth_isa::factorial(5), 120);
/// ```
pub fn factorial(n: u8) -> u64 {
    (1..=n as u64).product()
}

/// All permutations of `1..=n`, in lexicographic order.
///
/// The first entry is the identity `[1, 2, …, n]` and the last is the
/// reversal. Lexicographic order makes test expectations and deduplication
/// deterministic across the workspace.
///
/// # Examples
///
/// ```
/// let perms = sortsynth_isa::permutations(3);
/// assert_eq!(perms.len(), 6);
/// assert_eq!(perms[0], vec![1, 2, 3]);
/// assert_eq!(perms[5], vec![3, 2, 1]);
/// ```
pub fn permutations(n: u8) -> Vec<Vec<u8>> {
    let mut current: Vec<u8> = (1..=n).collect();
    let mut out = Vec::with_capacity(factorial(n) as usize);
    loop {
        out.push(current.clone());
        if !next_permutation(&mut current) {
            return out;
        }
    }
}

/// Advances `arr` to its lexicographic successor; returns `false` (leaving
/// `arr` untouched) when `arr` is already the last permutation.
fn next_permutation(arr: &mut [u8]) -> bool {
    if arr.len() < 2 {
        return false;
    }
    // Find the longest non-increasing suffix.
    let mut i = arr.len() - 1;
    while i > 0 && arr[i - 1] >= arr[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    // Pivot arr[i-1] is smaller than some element of the suffix: swap with the
    // rightmost such element, then reverse the suffix.
    let mut j = arr.len() - 1;
    while arr[j] <= arr[i - 1] {
        j -= 1;
    }
    arr.swap(i - 1, j);
    arr[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(4), 24);
        assert_eq!(factorial(6), 720);
    }

    #[test]
    fn permutation_counts_match_factorial() {
        for n in 1..=6u8 {
            assert_eq!(permutations(n).len() as u64, factorial(n));
        }
    }

    #[test]
    fn permutations_are_distinct_and_are_permutations() {
        let perms = permutations(5);
        let set: HashSet<_> = perms.iter().cloned().collect();
        assert_eq!(set.len(), perms.len());
        for p in &perms {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn lexicographic_order() {
        let perms = permutations(4);
        for w in perms.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
