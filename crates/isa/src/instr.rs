//! Instructions and programs.

use std::error::Error;
use std::fmt;

use crate::machine::{Machine, Reg};

/// An opcode of either kernel ISA.
///
/// `Mov`, `Cmp`, `Cmovl`, `Cmovg` form the conditional-move ISA of the
/// paper's §2.2; `Mov`, `Min`, `Max` form the min/max (vector) ISA of §5.4.
/// `Cmp` is the only flag-writing instruction; `Cmovl`/`Cmovg` are the only
/// flag readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// `mov dst, src`: unconditionally copy `src` into `dst`.
    Mov,
    /// `cmp a, b`: set the `lt` flag if `a < b`, the `gt` flag if `a > b`.
    Cmp,
    /// `cmovl dst, src`: copy `src` into `dst` if the `lt` flag is set.
    Cmovl,
    /// `cmovg dst, src`: copy `src` into `dst` if the `gt` flag is set.
    Cmovg,
    /// `min dst, src`: `dst = min(dst, src)` (models `pminsd`/`pminud`).
    Min,
    /// `max dst, src`: `dst = max(dst, src)` (models `pmaxsd`/`pmaxud`).
    Max,
}

impl Op {
    /// The assembly-style mnemonic (`"mov"`, `"cmp"`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Mov => "mov",
            Op::Cmp => "cmp",
            Op::Cmovl => "cmovl",
            Op::Cmovg => "cmovg",
            Op::Min => "min",
            Op::Max => "max",
        }
    }

    /// Whether this opcode reads the comparison flags.
    pub fn reads_flags(self) -> bool {
        matches!(self, Op::Cmovl | Op::Cmovg)
    }

    /// Whether this opcode writes the comparison flags.
    pub fn writes_flags(self) -> bool {
        matches!(self, Op::Cmp)
    }

    /// Whether this opcode may write its first (destination) operand.
    pub fn writes_dst(self) -> bool {
        !matches!(self, Op::Cmp)
    }

    /// Whether this opcode reads its first (destination) operand.
    ///
    /// `mov` overwrites the destination without reading it; everything else
    /// either compares it (`cmp`), conditionally keeps it (`cmovl`/`cmovg` —
    /// the old value survives when the flag is clear, which is a read for
    /// dependence purposes), or combines it (`min`/`max`).
    pub fn reads_dst(self) -> bool {
        !matches!(self, Op::Mov)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single two-operand instruction: `op dst, src`.
///
/// Register operands are [`Reg`] indices into the combined
/// `r1..rn, s1..sm` register file of a [`Machine`]; use
/// [`Machine::format_instr`] to render them with their `r`/`s` names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instr {
    /// The opcode.
    pub op: Op,
    /// First operand (destination for all ops; left comparand for `cmp`).
    pub dst: Reg,
    /// Second operand (source; right comparand for `cmp`).
    pub src: Reg,
}

impl Instr {
    /// Creates an instruction.
    pub fn new(op: Op, dst: Reg, src: Reg) -> Self {
        Instr { op, dst, src }
    }
}

/// A straight-line kernel program: a sequence of [`Instr`].
pub type Program = Vec<Instr>;

/// Error returned by [`Machine::parse_program`] for malformed program text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    msg: String,
}

impl ParseProgramError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ParseProgramError { msg: msg.into() }
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid kernel program: {}", self.msg)
    }
}

impl Error for ParseProgramError {}

impl Machine {
    /// Renders `instr` with `r`/`s` register names, e.g. `"cmovl r1 s1"`.
    pub fn format_instr(&self, instr: Instr) -> String {
        format!(
            "{} {} {}",
            instr.op,
            self.reg_name(instr.dst),
            self.reg_name(instr.src)
        )
    }

    /// Renders a whole program, one instruction per line.
    pub fn format_program(&self, prog: &[Instr]) -> String {
        let mut out = String::new();
        for &i in prog {
            out.push_str(&self.format_instr(i));
            out.push('\n');
        }
        out
    }

    /// Name of register `reg`: `r1..rn` for value registers, `s1..sm` for
    /// scratch registers.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range for this machine.
    pub fn reg_name(&self, reg: Reg) -> String {
        let idx = reg.index() as usize;
        let n = self.n() as usize;
        assert!(idx < self.num_regs() as usize, "register out of range");
        if idx < n {
            format!("r{}", idx + 1)
        } else {
            format!("s{}", idx - n + 1)
        }
    }

    /// Parses a register name (`r3`, `s1`, …) for this machine.
    ///
    /// # Errors
    ///
    /// Returns [`ParseProgramError`] if the name is malformed or the index is
    /// out of range.
    pub fn parse_reg(&self, text: &str) -> Result<Reg, ParseProgramError> {
        let text = text.trim().trim_end_matches(',');
        let (kind, num) = text.split_at(1.min(text.len()));
        let idx: usize = num
            .parse()
            .map_err(|_| ParseProgramError::new(format!("bad register `{text}`")))?;
        if idx == 0 {
            return Err(ParseProgramError::new(format!("bad register `{text}`")));
        }
        let reg = match kind {
            "r" if idx <= self.n() as usize => Reg::new((idx - 1) as u8),
            "s" if idx <= self.scratch() as usize => Reg::new((self.n() as usize + idx - 1) as u8),
            _ => {
                return Err(ParseProgramError::new(format!(
                    "register `{text}` out of range for n={}, m={}",
                    self.n(),
                    self.scratch()
                )))
            }
        };
        Ok(reg)
    }

    /// Parses program text: instructions separated by newlines or `;`, each
    /// of the form `op dst src` (an optional comma after `dst` is accepted).
    /// Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseProgramError`] on unknown mnemonics, malformed
    /// registers, or instructions foreign to this machine's ISA.
    ///
    /// # Examples
    ///
    /// ```
    /// use sortsynth_isa::{IsaMode, Machine};
    ///
    /// let machine = Machine::new(2, 1, IsaMode::Cmov);
    /// let prog = machine.parse_program("cmp r1 r2\ncmovg s1 r1")?;
    /// assert_eq!(prog.len(), 2);
    /// # Ok::<(), sortsynth_isa::ParseProgramError>(())
    /// ```
    pub fn parse_program(&self, text: &str) -> Result<Program, ParseProgramError> {
        let mut prog = Program::new();
        for raw in text.split(['\n', ';']) {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mnemonic = parts.next().expect("non-empty line has a token");
            let op = match mnemonic {
                "mov" | "movdqa" => Op::Mov,
                "cmp" => Op::Cmp,
                "cmovl" => Op::Cmovl,
                "cmovg" => Op::Cmovg,
                "min" | "pminsd" | "pminud" => Op::Min,
                "max" | "pmaxsd" | "pmaxud" => Op::Max,
                other => {
                    return Err(ParseProgramError::new(format!(
                        "unknown mnemonic `{other}`"
                    )))
                }
            };
            if !self.mode().ops().contains(&op) {
                return Err(ParseProgramError::new(format!(
                    "op `{op}` not in the {:?} ISA",
                    self.mode()
                )));
            }
            let dst = self.parse_reg(
                parts
                    .next()
                    .ok_or_else(|| ParseProgramError::new(format!("`{line}`: missing dst")))?,
            )?;
            let src = self.parse_reg(
                parts
                    .next()
                    .ok_or_else(|| ParseProgramError::new(format!("`{line}`: missing src")))?,
            )?;
            if parts.next().is_some() {
                return Err(ParseProgramError::new(format!("`{line}`: trailing tokens")));
            }
            prog.push(Instr::new(op, dst, src));
        }
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::IsaMode;

    #[test]
    fn op_flag_usage() {
        assert!(Op::Cmp.writes_flags());
        assert!(!Op::Cmp.writes_dst());
        assert!(Op::Cmovl.reads_flags());
        assert!(Op::Cmovg.reads_flags());
        assert!(!Op::Mov.reads_flags());
        assert!(!Op::Min.reads_flags());
        assert!(!Op::Mov.reads_dst());
        assert!(Op::Min.reads_dst());
    }

    #[test]
    fn parse_and_format_round_trip() {
        let machine = Machine::new(3, 2, IsaMode::Cmov);
        let text = "mov r1 r2\ncmp r2 s1\ncmovl s2 r3\ncmovg r3 r1\n";
        let prog = machine.parse_program(text).unwrap();
        assert_eq!(machine.format_program(&prog), text);
    }

    #[test]
    fn parse_accepts_semicolons_commas_comments() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let prog = machine
            .parse_program("# header\nmov s1, r2; cmp r1 r2 # trailing\n\ncmovg r2 r1")
            .unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(prog[0], Instr::new(Op::Mov, Reg::new(2), Reg::new(1)));
    }

    #[test]
    fn parse_rejects_bad_input() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        assert!(machine.parse_program("bogus r1 r2").is_err());
        assert!(machine.parse_program("mov r1").is_err());
        assert!(machine.parse_program("mov r1 r5").is_err());
        assert!(machine.parse_program("mov r0 r1").is_err());
        assert!(machine.parse_program("mov r1 s2").is_err());
        assert!(machine.parse_program("mov r1 r2 r3").is_err());
        // min/max are not part of the cmov ISA.
        assert!(machine.parse_program("min r1 r2").is_err());
    }

    #[test]
    fn parse_minmax_mnemonic_aliases() {
        let machine = Machine::new(3, 1, IsaMode::MinMax);
        let prog = machine
            .parse_program("movdqa s1 r1\npminud s1 r2\npmaxsd r2 r1")
            .unwrap();
        assert_eq!(prog[1].op, Op::Min);
        assert_eq!(prog[2].op, Op::Max);
        assert!(machine.parse_program("cmovl r1 r2").is_err());
    }

    #[test]
    fn reg_names() {
        let machine = Machine::new(3, 2, IsaMode::Cmov);
        assert_eq!(machine.reg_name(Reg::new(0)), "r1");
        assert_eq!(machine.reg_name(Reg::new(2)), "r3");
        assert_eq!(machine.reg_name(Reg::new(3)), "s1");
        assert_eq!(machine.reg_name(Reg::new(4)), "s2");
    }
}
