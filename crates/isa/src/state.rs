//! Packed per-permutation machine states.

use std::fmt;

use crate::instr::{Instr, Op};
use crate::machine::Reg;

/// A complete register assignment plus flags, packed into a `u64`.
///
/// Register `i` occupies bits `4i..4i+4` (so values must fit in a nibble,
/// which holds for every supported `n ≤ 14`); the `lt` flag is bit 60 and the
/// `gt` flag is bit 61. This is the paper's *register assignment* (§2.2): one
/// exists per input permutation, and a synthesis search state is a set of
/// them.
///
/// The packing gives `O(1)` hashing/comparison and keeps multi-million-state
/// searches cache-friendly.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::MachineState;
///
/// let st = MachineState::from_values(&[2, 1, 0]);
/// assert_eq!(st.values(3), vec![2, 1, 0]);
/// assert!(!st.lt_flag() && !st.gt_flag());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineState(u64);

const LT_BIT: u64 = 1 << 60;
const GT_BIT: u64 = 1 << 61;
const REG_MASK: u64 = 0xF;

/// Maximum number of registers representable in a packed state.
pub const MAX_REGS: u8 = 15;

impl MachineState {
    /// Builds a state with the given register values (index order), flags
    /// unset. Values must fit in 4 bits.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_REGS`] values are given or a value exceeds 15.
    pub fn from_values(values: &[u8]) -> Self {
        assert!(values.len() <= MAX_REGS as usize, "too many registers");
        let mut bits = 0u64;
        for (i, &v) in values.iter().enumerate() {
            assert!(v <= 15, "register value {v} does not fit in a nibble");
            bits |= (v as u64) << (4 * i);
        }
        MachineState(bits)
    }

    /// The raw packed representation.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a state from [`Self::bits`].
    pub fn from_bits(bits: u64) -> Self {
        MachineState(bits)
    }

    /// Value of register `reg`.
    #[inline]
    pub fn reg(self, reg: Reg) -> u8 {
        ((self.0 >> (4 * reg.index())) & REG_MASK) as u8
    }

    /// Sets register `reg` to `value`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `value` fits in a nibble.
    #[inline]
    pub fn set_reg(&mut self, reg: Reg, value: u8) {
        debug_assert!(value <= 15);
        let shift = 4 * reg.index();
        self.0 = (self.0 & !(REG_MASK << shift)) | ((value as u64) << shift);
    }

    /// Whether the `lt` flag is set.
    #[inline]
    pub fn lt_flag(self) -> bool {
        self.0 & LT_BIT != 0
    }

    /// Whether the `gt` flag is set.
    #[inline]
    pub fn gt_flag(self) -> bool {
        self.0 & GT_BIT != 0
    }

    /// Sets both flags at once (at most one may be true after a `cmp` on
    /// distinct values; both false means "unset or compared equal").
    #[inline]
    pub fn set_flags(&mut self, lt: bool, gt: bool) {
        self.0 &= !(LT_BIT | GT_BIT);
        if lt {
            self.0 |= LT_BIT;
        }
        if gt {
            self.0 |= GT_BIT;
        }
    }

    /// The first `count` register values, in index order.
    pub fn values(self, count: u8) -> Vec<u8> {
        (0..count).map(|i| self.reg(Reg::new(i))).collect()
    }

    /// Executes one instruction in place.
    ///
    /// This is the single source of truth for ISA semantics; every
    /// interpreter, search, solver encoding, and JIT in the workspace is
    /// tested against it.
    #[inline]
    pub fn exec(&mut self, instr: Instr) {
        match instr.op {
            Op::Mov => {
                let v = self.reg(instr.src);
                self.set_reg(instr.dst, v);
            }
            Op::Cmp => {
                let a = self.reg(instr.dst);
                let b = self.reg(instr.src);
                self.set_flags(a < b, a > b);
            }
            Op::Cmovl => {
                if self.lt_flag() {
                    let v = self.reg(instr.src);
                    self.set_reg(instr.dst, v);
                }
            }
            Op::Cmovg => {
                if self.gt_flag() {
                    let v = self.reg(instr.src);
                    self.set_reg(instr.dst, v);
                }
            }
            Op::Min => {
                let v = self.reg(instr.dst).min(self.reg(instr.src));
                self.set_reg(instr.dst, v);
            }
            Op::Max => {
                let v = self.reg(instr.dst).max(self.reg(instr.src));
                self.set_reg(instr.dst, v);
            }
        }
    }

    /// Returns the successor state after executing `instr`.
    #[inline]
    pub fn step(mut self, instr: Instr) -> Self {
        self.exec(instr);
        self
    }
}

impl fmt::Debug for MachineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MachineState[")?;
        for i in 0..MAX_REGS {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.reg(Reg::new(i)))?;
        }
        write!(
            f,
            " | {}{}]",
            if self.lt_flag() { "<" } else { "-" },
            if self.gt_flag() { ">" } else { "-" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(op: Op, dst: u8, src: u8) -> Instr {
        Instr::new(op, Reg::new(dst), Reg::new(src))
    }

    #[test]
    fn pack_unpack_round_trip() {
        let st = MachineState::from_values(&[3, 1, 4, 1, 5, 9, 2, 6]);
        assert_eq!(st.values(8), vec![3, 1, 4, 1, 5, 9, 2, 6]);
        assert_eq!(MachineState::from_bits(st.bits()), st);
    }

    #[test]
    fn set_reg_preserves_neighbours_and_flags() {
        let mut st = MachineState::from_values(&[1, 2, 3]);
        st.set_flags(true, false);
        st.set_reg(Reg::new(1), 7);
        assert_eq!(st.values(3), vec![1, 7, 3]);
        assert!(st.lt_flag() && !st.gt_flag());
    }

    #[test]
    fn mov_copies() {
        let mut st = MachineState::from_values(&[2, 1, 0]);
        st.exec(i(Op::Mov, 2, 1));
        assert_eq!(st.values(3), vec![2, 1, 1]);
    }

    #[test]
    fn cmp_sets_flags_three_ways() {
        let mut st = MachineState::from_values(&[2, 1]);
        st.exec(i(Op::Cmp, 0, 1));
        assert!(!st.lt_flag() && st.gt_flag());
        st.exec(i(Op::Cmp, 1, 0));
        assert!(st.lt_flag() && !st.gt_flag());
        st.exec(i(Op::Mov, 1, 0));
        st.exec(i(Op::Cmp, 0, 1));
        assert!(!st.lt_flag() && !st.gt_flag());
    }

    #[test]
    fn cmov_respects_flags() {
        // Unset flags: both cmovs are no-ops.
        let mut st = MachineState::from_values(&[2, 1]);
        st.exec(i(Op::Cmovl, 0, 1));
        st.exec(i(Op::Cmovg, 0, 1));
        assert_eq!(st.values(2), vec![2, 1]);

        // The paper's worked n=2 example (§2.2): mov s1 r2; cmp r1 r2;
        // cmovg r2 r1; cmovg r1 s1 sorts [2, 1] into [1, 2].
        let mut st = MachineState::from_values(&[2, 1, 0]);
        st.exec(i(Op::Mov, 2, 1));
        st.exec(i(Op::Cmp, 0, 1));
        st.exec(i(Op::Cmovg, 1, 0));
        st.exec(i(Op::Cmovg, 0, 2));
        assert_eq!(st.values(3), vec![1, 2, 1]);
    }

    #[test]
    fn min_max_semantics() {
        let mut st = MachineState::from_values(&[3, 1]);
        st.exec(i(Op::Min, 0, 1));
        assert_eq!(st.values(2), vec![1, 1]);
        let mut st = MachineState::from_values(&[3, 1]);
        st.exec(i(Op::Max, 1, 0));
        assert_eq!(st.values(2), vec![3, 3]);
    }

    #[test]
    fn step_is_pure() {
        let st = MachineState::from_values(&[2, 1]);
        let st2 = st.step(i(Op::Mov, 0, 1));
        assert_eq!(st.values(2), vec![2, 1]);
        assert_eq!(st2.values(2), vec![1, 1]);
    }
}
