//! Static cost models for kernel programs.
//!
//! Three models are provided, mirroring the paper's evaluation machinery:
//!
//! * [`weighted_score`] — the §5.3 sampling score: `mov` = 1, `cmp` = 2,
//!   conditional moves = 4 (plus the critical path, which §5.3 adds on top;
//!   callers combine them via [`critical_path`]).
//! * [`critical_path`] — length of the longest data-dependence chain through
//!   the program, the instruction-level-parallelism measure the paper's
//!   uiCA analysis attributes the synthesized kernels' speedups to (§5.4).
//! * [`uica_estimate`] — a uiCA-style throughput estimate: the maximum of the
//!   latency-weighted critical path (with move elimination) and the
//!   issue-width bound.

use crate::instr::{Instr, Op};

/// Instruction-mix summary as reported in the §5.3 tables
/// (`Cmp` / `Mov` / `CMov` / `Other` columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrMix {
    /// Number of `cmp` instructions.
    pub cmp: u32,
    /// Number of unconditional `mov` instructions.
    pub mov: u32,
    /// Number of `cmovl`/`cmovg` instructions.
    pub cmov: u32,
    /// Everything else (`min`/`max` in this workspace).
    pub other: u32,
}

impl InstrMix {
    /// Counts the instructions of `prog` by category.
    pub fn of(prog: &[Instr]) -> Self {
        let mut mix = InstrMix::default();
        for instr in prog {
            match instr.op {
                Op::Mov => mix.mov += 1,
                Op::Cmp => mix.cmp += 1,
                Op::Cmovl | Op::Cmovg => mix.cmov += 1,
                Op::Min | Op::Max => mix.other += 1,
            }
        }
        mix
    }

    /// Total instruction count.
    pub fn total(&self) -> u32 {
        self.cmp + self.mov + self.cmov + self.other
    }
}

/// Per-opcode weights for [`weighted_score`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of `mov`.
    pub mov: u32,
    /// Weight of `cmp`.
    pub cmp: u32,
    /// Weight of `cmovl`/`cmovg`.
    pub cmov: u32,
    /// Weight of `min`/`max`.
    pub minmax: u32,
}

impl Default for CostWeights {
    /// The paper's §5.3 weights: `mov` 1, `cmp` 2, conditional moves 4
    /// (`min`/`max` get 2, matching their `cmp`-like execution cost).
    fn default() -> Self {
        CostWeights {
            mov: 1,
            cmp: 2,
            cmov: 4,
            minmax: 2,
        }
    }
}

/// The §5.3 instruction-weight score used to rank solutions before sampling.
///
/// For the paper's n = 4 solution space this takes values in
/// `{55, 58, 61, 64, 67, 70}` **after** adding the critical path; combine
/// with [`critical_path`] for the full sampling score.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{weighted_score, CostWeights, IsaMode, Machine};
///
/// let m = Machine::new(2, 1, IsaMode::Cmov);
/// let cas = m.parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")?;
/// assert_eq!(weighted_score(&cas, CostWeights::default()), 1 + 2 + 4 + 4);
/// # Ok::<(), sortsynth_isa::ParseProgramError>(())
/// ```
pub fn weighted_score(prog: &[Instr], weights: CostWeights) -> u32 {
    prog.iter()
        .map(|instr| match instr.op {
            Op::Mov => weights.mov,
            Op::Cmp => weights.cmp,
            Op::Cmovl | Op::Cmovg => weights.cmov,
            Op::Min | Op::Max => weights.minmax,
        })
        .sum()
}

/// Longest data-dependence chain through `prog`, in instructions.
///
/// Only true (read-after-write) dependences count — an out-of-order core
/// renames away WAR/WAW hazards. Flags are modelled as one extra renamed
/// resource. Every instruction has unit latency here; see [`uica_estimate`]
/// for a latency-aware variant with move elimination.
pub fn critical_path(prog: &[Instr]) -> u32 {
    dependence_depth(prog, |_| 1)
}

/// uiCA-style cycle estimate: `max(latency-weighted critical path,
/// ⌈instructions / issue width⌉)` with an issue width of 4 and zero-latency
/// (rename-eliminated) `mov`s, as discussed in the paper's §2.1.
pub fn uica_estimate(prog: &[Instr]) -> f64 {
    let latency = |op: Op| -> u32 {
        match op {
            Op::Mov => 0, // eliminated at register rename
            Op::Cmp | Op::Cmovl | Op::Cmovg | Op::Min | Op::Max => 1,
        }
    };
    let path = dependence_depth(prog, latency) as f64;
    let throughput = prog.len() as f64 / 4.0;
    path.max(throughput)
}

/// Longest dependence chain where each instruction contributes
/// `latency(op)` cycles.
fn dependence_depth(prog: &[Instr], latency: impl Fn(Op) -> u32) -> u32 {
    // Completion time of the last write to each register / the flags.
    let mut reg_ready = [0u32; crate::state::MAX_REGS as usize + 1];
    const FLAGS: usize = crate::state::MAX_REGS as usize;
    let mut depth = 0;
    for instr in prog {
        let mut start = 0u32;
        let mut dep = |r: usize| start = start.max(reg_ready[r]);
        dep(instr.src.index() as usize);
        if instr.op.reads_dst() {
            dep(instr.dst.index() as usize);
        }
        if instr.op.reads_flags() {
            dep(FLAGS);
        }
        let done = start + latency(instr.op);
        if instr.op.writes_dst() {
            reg_ready[instr.dst.index() as usize] = done;
        }
        if instr.op.writes_flags() {
            reg_ready[FLAGS] = done;
        }
        depth = depth.max(done);
    }
    depth
}

/// Convenience: the §5.3 sampling score, `weighted_score + critical_path`.
pub fn sampling_score(prog: &[Instr]) -> u32 {
    weighted_score(prog, CostWeights::default()) + critical_path(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{IsaMode, Machine, Reg};

    fn i(op: Op, dst: u8, src: u8) -> Instr {
        Instr::new(op, Reg::new(dst), Reg::new(src))
    }

    #[test]
    fn instr_mix_counts() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let p = m
            .parse_program("mov s1 r1; cmp r1 r2; cmovl r1 r2; cmovg r2 s1")
            .unwrap();
        let mix = InstrMix::of(&p);
        assert_eq!(mix.mov, 1);
        assert_eq!(mix.cmp, 1);
        assert_eq!(mix.cmov, 2);
        assert_eq!(mix.other, 0);
        assert_eq!(mix.total(), 4);

        let mm = Machine::new(3, 1, IsaMode::MinMax);
        let p = mm.parse_program("mov s1 r1; min r1 r2; max r2 s1").unwrap();
        let mix = InstrMix::of(&p);
        assert_eq!(mix.other, 2);
        assert_eq!(mix.mov, 1);
    }

    #[test]
    fn weighted_score_default_weights() {
        let prog = vec![i(Op::Mov, 3, 1), i(Op::Cmp, 0, 1), i(Op::Cmovg, 1, 0)];
        assert_eq!(weighted_score(&prog, CostWeights::default()), 1 + 2 + 4);
    }

    #[test]
    fn serial_chain_has_full_depth() {
        // Each instruction depends on the previous through r1.
        let prog = vec![i(Op::Mov, 0, 1), i(Op::Min, 0, 2), i(Op::Min, 0, 3)];
        assert_eq!(critical_path(&prog), 3);
    }

    #[test]
    fn independent_instrs_run_in_parallel() {
        let prog = vec![i(Op::Mov, 3, 0), i(Op::Mov, 4, 1), i(Op::Mov, 5, 2)];
        assert_eq!(critical_path(&prog), 1);
    }

    #[test]
    fn flags_create_dependences() {
        // cmovl depends on cmp through the flags even with disjoint registers.
        let prog = vec![i(Op::Cmp, 0, 1), i(Op::Cmovl, 2, 3)];
        assert_eq!(critical_path(&prog), 2);
        // Two cmps: second overwrites flags; cmov depends on the *second*.
        let prog = vec![i(Op::Cmp, 0, 1), i(Op::Cmp, 2, 3), i(Op::Cmovl, 4, 5)];
        assert_eq!(critical_path(&prog), 2);
    }

    #[test]
    fn uica_move_elimination() {
        // A pure mov chain costs 0 latency; throughput bound dominates.
        let prog = vec![i(Op::Mov, 0, 1), i(Op::Mov, 1, 0)];
        assert!((uica_estimate(&prog) - 0.5).abs() < 1e-9);
        // A dependent cmp/cmov pair costs 2 cycles of latency.
        let prog = vec![i(Op::Cmp, 0, 1), i(Op::Cmovl, 0, 1)];
        assert!((uica_estimate(&prog) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_score_combines_both() {
        let prog = vec![i(Op::Cmp, 0, 1), i(Op::Cmovl, 0, 1)];
        assert_eq!(sampling_score(&prog), (2 + 4) + 2);
    }
}
