//! Semantic program equivalence and the 0-1-lemma analysis of §2.3.

use crate::instr::Instr;
use crate::machine::{Machine, Reg};
use crate::perm::permutations;
use crate::state::MachineState;

/// Whether two programs are *observationally equivalent* for sorting: for
/// every input permutation they leave identical values in the value
/// registers `r1..rn` (§3.6's equivalence notion; scratch registers and
/// flags are dead at kernel exit and therefore ignored).
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{equivalent, IsaMode, Machine};
///
/// let m = Machine::new(2, 1, IsaMode::Cmov);
/// // The flag write commutes with an unrelated mov (§3.6's example).
/// let a = m.parse_program("cmp r1 r2; mov s1 r2")?;
/// let b = m.parse_program("mov s1 r2; cmp r1 r2")?;
/// assert!(equivalent(&m, &a, &b));
/// # Ok::<(), sortsynth_isa::ParseProgramError>(())
/// ```
pub fn equivalent(machine: &Machine, a: &[Instr], b: &[Instr]) -> bool {
    machine.initial_states().into_iter().all(|st| {
        let out_a = machine.run(a, st);
        let out_b = machine.run(b, st);
        observable(machine, out_a) == observable(machine, out_b)
    })
}

/// The observable part of a final state: the value registers only.
fn observable(machine: &Machine, st: MachineState) -> u64 {
    let bits = 4 * machine.n() as u32;
    if bits >= 64 {
        st.bits()
    } else {
        st.bits() & ((1u64 << bits) - 1)
    }
}

/// Checks §2.3's claim that the 0-1 sorting lemma does **not** apply to
/// cmp/cmov kernels: returns a permutation of `1..=n` that `prog` fails to
/// sort even though it sorts *every* 0-1 input, or `None` if no such
/// witness exists (i.e. either some 0-1 input already fails, or the program
/// is simply correct).
///
/// For genuine compare-and-swap networks this always returns `None` (the
/// lemma holds); the interesting inputs are programs whose cmp/cmov
/// structure is *not* a network.
pub fn zero_one_counterexample(machine: &Machine, prog: &[Instr]) -> Option<Vec<u8>> {
    if !sorts_all_zero_one(machine, prog) {
        return None;
    }
    permutations(machine.n())
        .into_iter()
        .find(|p| !machine.is_sorted(machine.run(prog, machine.initial_state(p))))
}

/// Whether `prog` sorts every 0/1 input vector (the 0-1 lemma's test
/// suite).
pub fn sorts_all_zero_one(machine: &Machine, prog: &[Instr]) -> bool {
    let n = machine.n();
    (0u32..1 << n).all(|bits| {
        let input: Vec<u8> = (0..n).map(|i| ((bits >> i) & 1) as u8).collect();
        let out = machine.run(prog, machine.initial_state(&input));
        let result: Vec<u8> = (0..n).map(|i| out.reg(Reg::new(i))).collect();
        let mut expected = input.clone();
        expected.sort_unstable();
        result == expected
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::IsaMode;

    fn m3() -> Machine {
        Machine::new(3, 1, IsaMode::Cmov)
    }

    #[test]
    fn program_is_equivalent_to_itself_and_reorderings() {
        let m = m3();
        let a = m
            .parse_program("cmp r1 r2; mov s1 r2; cmovg r2 r1")
            .unwrap();
        let b = m
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1")
            .unwrap();
        assert!(equivalent(&m, &a, &a));
        assert!(equivalent(&m, &a, &b));
    }

    #[test]
    fn overwritten_compare_is_redundant() {
        // §3.6: cmp r1 r2; cmp r2 r3 ≡ cmp r2 r3 (first flags overwritten).
        let m = m3();
        let a = m
            .parse_program("cmp r1 r2; cmp r2 r3; cmovl r1 r2")
            .unwrap();
        let b = m.parse_program("cmp r2 r3; cmovl r1 r2").unwrap();
        assert!(equivalent(&m, &a, &b));
    }

    #[test]
    fn different_behaviour_is_detected() {
        let m = m3();
        let a = m.parse_program("cmp r1 r2; cmovg r1 r2").unwrap();
        let b = m.parse_program("cmp r1 r2; cmovl r1 r2").unwrap();
        assert!(!equivalent(&m, &a, &b));
    }

    #[test]
    fn scratch_contents_are_not_observable() {
        let m = m3();
        let a = m.parse_program("mov s1 r1").unwrap();
        let b: Vec<Instr> = Vec::new();
        assert!(equivalent(&m, &a, &b));
    }

    #[test]
    fn networks_satisfy_the_zero_one_lemma() {
        // A genuine compare-and-swap sequence: passing 0-1 tests implies
        // full correctness, so no counterexample exists.
        let m = m3();
        let network = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r2; cmp r2 r3; cmovg r2 r3; cmovg r3 s1; \
                 mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1",
            )
            .unwrap();
        assert!(m.is_correct(&network));
        assert_eq!(zero_one_counterexample(&m, &network), None);
    }

    #[test]
    fn zero_one_lemma_fails_for_free_form_cmov_programs() {
        // §2.3: because cmp and cmov are *separate* instructions, a program
        // can react to stale flags — something a single-instruction
        // compare-and-swap can never do — and the 0-1 lemma breaks.
        //
        // Witness: take the standard 11-instruction kernel and delete the
        // final `cmp r1 r2`, so the last conditional block fires on the
        // flags of the earlier `cmp r2 r3`. On every 0-1 input the stale
        // guard happens to coincide with the right one, so all 2^3 = 8
        // zero-one tests pass; the permutation [1, 3, 2] (three distinct
        // values) exposes the bug.
        let m = m3();
        let stale_flags = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert!(sorts_all_zero_one(&m, &stale_flags));
        assert!(!m.is_correct(&stale_flags));
        let witness =
            zero_one_counterexample(&m, &stale_flags).expect("0-1 lemma violation witness exists");
        assert_eq!(witness, vec![1, 3, 2]);

        // Sanity: the unmutated kernel is correct, so no witness exists.
        let full = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmp r1 r2; cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert!(m.is_correct(&full));
        assert_eq!(zero_one_counterexample(&m, &full), None);
    }
}
