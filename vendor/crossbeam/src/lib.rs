#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored `crossbeam`-compatible subset for offline builds.
//!
//! Provides the two pieces the workspace uses:
//!
//! * [`thread::scope`] — scoped spawning with crossbeam's closure and
//!   `Result` shapes, implemented over `std::thread::scope` (stable since
//!   Rust 1.63, which made the crossbeam original largely redundant).
//! * [`channel`] — MPMC bounded/unbounded channels built on a
//!   `Mutex<VecDeque>` + `Condvar` core: `try_send` never blocks on a full
//!   bounded channel (the service layer's load-shedding primitive), receivers
//!   are cloneable, and `recv` returns `Err` once the channel is closed and
//!   drained.

pub mod thread {
    use std::any::Any;

    /// A scope handle passed to spawned closures, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (unused by
        /// most callers, kept for crossbeam signature compatibility).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the caller.
    ///
    /// Returns `Ok` with the closure's value; panics in spawned threads
    /// propagate out of `std::thread::scope` (crossbeam instead reported
    /// them in the `Result` — all workspace callers `.expect()` either way).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        readable: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        writable: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed and
    /// drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState {
                items: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, ChannelState<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                let full = state.capacity.is_some_and(|cap| state.items.len() >= cap);
                if !full {
                    state.items.push_back(item);
                    drop(state);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .writable
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Sends without blocking; a full bounded channel returns
        /// [`TrySendError::Full`] immediately.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if state.capacity.is_some_and(|cap| state.items.len() >= cap) {
                return Err(TrySendError::Full(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until an item arrives or the channel closes.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .readable
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .readable
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.writable.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued items (racy snapshot, for metrics only).
        pub fn len(&self) -> usize {
            self.shared.lock().items.len()
        }

        /// Whether the queue is empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_send_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_sheds_when_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn recv_timeout_expires() {
            let (tx, rx) = bounded::<i32>(1);
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = bounded(4);
            let rx2 = rx.clone();
            let consumer = std::thread::spawn(move || {
                let mut sum = 0;
                while let Ok(v) = rx2.recv() {
                    sum += v;
                }
                sum
            });
            let consumer2 = std::thread::spawn(move || {
                let mut sum = 0;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            });
            for i in 1..=100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total = consumer.join().unwrap() + consumer2.join().unwrap();
            assert_eq!(total, 5050);
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_with_results() {
        let data = vec![1, 2, 3, 4];
        let sum = super::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<i32>()));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker ok"))
                .sum::<i32>()
        })
        .expect("scope ok");
        assert_eq!(sum, 10);
    }
}
