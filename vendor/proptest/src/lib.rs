#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored property-testing harness for offline builds.
//!
//! Implements the `proptest` API surface the workspace's test suites use:
//! the [`Strategy`] combinators (`prop_map`, `prop_flat_map`, tuples,
//! ranges, `Just`, `prop_oneof!`, `prop::collection::vec`, `any`), the
//! [`proptest!`] test macro, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Two deliberate simplifications against the real crate:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   seed; re-running reproduces it exactly (generation is deterministic
//!   per test name and case number), but no minimal counterexample search.
//! * **Panic-based assertions.** `prop_assert*` panics like `assert*`
//!   instead of routing a `TestCaseError` back through a runner.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as __Rng;

/// The generator handed to strategies: a seeded PRNG.
pub type TestRng = StdRng;

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the heavier differential suites
        // (SAT brute-force, JIT equivalence) fast while still exploring.
        ProptestConfig { cases: 64 }
    }
}

/// Result of one generated case's body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOutcome {
    Pass,
    /// The body rejected the inputs via `prop_assume!`.
    Reject,
}

/// Deterministic per-case RNG: seeded from the test's identity and case
/// index, so failures reproduce without stored seeds.
pub fn test_rng(test_name: &str, case: u64) -> TestRng {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples the
    /// result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn StrategyObject<T>>,
}

trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_obj(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (backs [`prop_oneof!`]).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        use rand::Rng as _;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::Rng as _;
        rng.gen_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore as _;
                // Bias towards boundary values, which find edge-case bugs
                // far more often than uniform sampling.
                let roll = rng.next_u64();
                match roll % 8 {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`: `any::<bool>()`, `any::<i32>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s of `element` with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                use rand::Rng as _;
                let len = rng.gen_range(self.size.min..=self.size.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Everything a proptest-style test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice between listed strategies (all of one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Rejects the current case, retrying with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestOutcome::Reject;
        }
    };
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut passed: u32 = 0;
                let mut rejected: u64 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    case += 1;
                    assert!(
                        rejected < config.cases as u64 * 16 + 1024,
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name),
                    );
                    let mut rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (move || {
                        $body
                        $crate::TestOutcome::Pass
                    })();
                    match outcome {
                        $crate::TestOutcome::Pass => passed += 1,
                        $crate::TestOutcome::Reject => rejected += 1,
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_generate_in_bounds(x in 3u8..=9, y in 0usize..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_flat_map_compose(
            (len, items) in (1usize..8).prop_flat_map(|len| {
                (Just(len), prop::collection::vec(0u32..100, len))
            }),
        ) {
            prop_assert_eq!(items.len(), len);
        }

        #[test]
        fn custom_strategy_functions_work(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_and_just_pick_listed_values(
            v in prop_oneof![Just(1u8), Just(3u8), Just(5u8)],
            b in any::<bool>(),
        ) {
            prop_assert!(v == 1 || v == 3 || v == 5);
            prop_assert!(b || !b);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }

        #[test]
        fn mut_bindings_are_supported(mut xs in prop::collection::vec(0i32..100, 0..20)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_attribute_is_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = prop::collection::vec(0u32..1_000_000, 5..10);
        let a = s.generate(&mut super::test_rng("t", 3));
        let b = s.generate(&mut super::test_rng("t", 3));
        let c = s.generate(&mut super::test_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let s = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for case in 0..50 {
            assert_eq!(s.generate(&mut super::test_rng("f", case)) % 2, 0);
        }
    }

    #[test]
    fn boxed_strategies_erase_types() {
        let s: BoxedStrategy<u32> = (0u32..5).prop_map(|x| x * 10).boxed();
        let v = s.generate(&mut super::test_rng("b", 1));
        assert!(v % 10 == 0 && v < 50);
    }
}
