#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored minimal `libc` surface for offline builds.
//!
//! The build container has no access to crates.io, so this crate declares
//! exactly the raw bindings the workspace uses (the JIT's `mmap`/`mprotect`/
//! `munmap` calls) against the system C library. Linux-only, matching the
//! values in `<sys/mman.h>` for every architecture the workspace targets.

#![allow(non_camel_case_types)]

pub use core::ffi::c_void;

pub type c_int = i32;
pub type size_t = usize;
pub type off_t = i64;

pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const PROT_EXEC: c_int = 4;

pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_ANONYMOUS: c_int = 0x20;

pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
}
