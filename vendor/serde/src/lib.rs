#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored serialization core for offline builds.
//!
//! The real `serde` is a visitor-based zero-copy framework driven by proc
//! macros; neither is available in this container. This stand-in keeps the
//! two trait names the workspace programs against — [`Serialize`] and
//! [`Deserialize`] — but routes them through an owned, JSON-shaped
//! [`Value`] tree. Downstream crates hand-write their impls (a few lines
//! per type) instead of deriving them, and `serde_json` (also vendored)
//! prints/parses the `Value` tree.

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers; everything that fits losslessly lands here.
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key-ordered map (deterministic output).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a map value from `(key, value)` pairs.
    pub fn map(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.get(key),
            _ => None,
        }
    }

    /// A map entry that must exist.
    pub fn required(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::new(format!("missing field `{key}`")))
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(Error::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::new(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u128;
                if wide <= i64::MAX as u128 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(Error::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::new(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::new(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::deserialize(&42u8.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::deserialize(&vec![1u32, 2, 3].serialize()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u8>::deserialize(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::deserialize(&Value::Int(7)), Ok(Some(7)));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert!(u8::deserialize(&Value::Int(-1)).is_err());
        assert!(i8::deserialize(&Value::UInt(u64::MAX)).is_err());
    }

    #[test]
    fn large_u64_uses_uint() {
        let v = u64::MAX.serialize();
        assert_eq!(v, Value::UInt(u64::MAX));
        assert_eq!(u64::deserialize(&v), Ok(u64::MAX));
    }

    #[test]
    fn map_helpers() {
        let v = Value::map([("a", Value::Int(1)), ("b", Value::Bool(false))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert!(v.required("missing").is_err());
    }
}
