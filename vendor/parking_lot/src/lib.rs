#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored `parking_lot`-compatible locks for offline builds.
//!
//! Thin wrappers over `std::sync` primitives exposing the poison-free
//! `parking_lot` API shape the workspace relies on: `lock()`, `read()`, and
//! `write()` return guards directly instead of `Result`s. A poisoned lock
//! (a thread panicked while holding it) just hands out the inner guard —
//! identical behavior to real `parking_lot`, which has no poisoning at all.

use std::sync::{self, PoisonError};
use std::time::Duration;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock with `parking_lot`'s panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable mirroring `parking_lot::Condvar`'s in-place wait API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks on `guard` until notified. Unlike `std`, mutates the guard in
    /// place (the `parking_lot` calling convention).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks on `guard` until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Runs `f` on the guard by value, storing the returned guard back in place.
///
/// `std`'s condvar consumes and returns guards while `parking_lot` mutates
/// them through `&mut`; this adapter bridges the two. The `ManuallyDrop`
/// shuffle is sound because the slot always holds a valid guard when control
/// returns to the caller (or unwinds before the read, leaking a lock guard at
/// worst).
fn take_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let t0 = Instant::now();
        let result = cv.wait_for(&mut guard, Duration::from_millis(20));
        assert!(result.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }
}
