#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored `rand`-compatible subset for offline builds.
//!
//! Implements exactly the API the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer and float ranges, and `Rng::gen_bool` — on
//! top of a xoshiro256** generator seeded through SplitMix64. Every
//! workspace call site seeds explicitly, so no OS entropy source is needed.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference recipe for seeding
            // xoshiro generators from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-10_000i32..10_000);
            assert!((-10_000..10_000).contains(&v));
            let w = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-1e-2f64..1e-2);
            assert!((-1e-2..1e-2).contains(&f));
            let b = rng.gen_range(0u8..=15);
            assert!(b <= 15);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.1)); // clamped above 1: always true
    }

    #[test]
    fn distribution_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
