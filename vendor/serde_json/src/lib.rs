#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored JSON front-end for the vendored `serde` value model.
//!
//! `to_string`/`to_vec` print a [`serde::Value`] tree as compact JSON;
//! `from_str`/`from_slice` parse JSON back into a tree and hand it to the
//! target type's `Deserialize` impl. Covers the JSON grammar the workspace
//! emits: objects, arrays, strings with standard escapes, numbers, booleans,
//! and null.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

/// Parses JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = std::collections::BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u8).unwrap(), "42");
        assert_eq!(from_str::<u8>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" \\slash 🙂".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Value::map([
            ("xs", Value::Seq(vec![Value::Int(1), Value::Int(2)])),
            ("name", Value::Str("kernel".into())),
            ("flag", Value::Bool(false)),
        ]);
        let json = to_string(&value).unwrap();
        assert_eq!(from_str::<Value>(&json).unwrap(), value);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<u8>("300").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u8> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn floats_round_trip() {
        let json = to_string(&1.5f64).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }
}
