#![allow(clippy::all)] // API-compatible stub crate; idiomatic-lint noise is not useful here.
//! Vendored `criterion`-compatible micro-bench harness for offline builds.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`)
//! with a plain wall-clock measurement loop: warm up, then run batches until
//! a time floor is reached, and report the mean time per iteration. No
//! statistics machinery — the point is that `cargo bench` compiles, runs,
//! and prints comparable numbers, not criterion-grade confidence intervals.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name.into(), f);
    }
}

/// A parameterized benchmark label, e.g. the `n` of a sweep.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }

    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are printed as benches run; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing loop handle given to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (bencher.iter never called)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{group}/{id}: mean {} (min {}, max {}, {} samples)",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a bench group: a function that runs each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // One warm-up call plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(21), &21, |b, &x| {
            b.iter(|| x * 2)
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
