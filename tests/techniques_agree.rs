//! Cross-technique agreement: the enumerative search, the SAT-based
//! solvers, and the planner must agree on optimal kernel lengths, and every
//! technique's output must pass the same correctness oracle.

use std::time::Duration;

use sortsynth::isa::{IsaMode, Machine};
use sortsynth::plan::{encode_synthesis, plan_to_program, solve, PlanLimits, PlanStrategy};
use sortsynth::search::{prove_no_solution, synthesize, BoundVerdict, SynthesisConfig};
use sortsynth::solvers::{smt_perm, Budget, EncodeOptions, SynthOutcome};
use sortsynth::stoke::{run as stoke_run, Start, StokeConfig, TestSuite};

fn m2() -> Machine {
    Machine::new(2, 1, IsaMode::Cmov)
}

#[test]
fn enum_sat_and_planner_agree_on_the_n2_optimum() {
    // Enumerative: optimal length 4.
    let enumerated = synthesize(&SynthesisConfig::new(m2()).budget_viability(true));
    assert_eq!(enumerated.found_len, Some(4));
    assert!(enumerated.minimal_certified);

    // SAT: length 4 satisfiable, length 3 unsatisfiable.
    let (at4, _) = smt_perm(&m2(), 4, EncodeOptions::default(), Budget::default());
    assert!(matches!(at4, SynthOutcome::Found(_)));
    let (at3, _) = smt_perm(&m2(), 3, EncodeOptions::default(), Budget::default());
    assert_eq!(at3, SynthOutcome::NoProgram);

    // Exhaustive lower bound agrees with the SAT UNSAT result.
    assert_eq!(
        prove_no_solution(&m2(), 3, None, None).verdict,
        BoundVerdict::NoSolution
    );

    // Planner: blind BFS is length-optimal, so the plan also has 4 steps.
    let (problem, instrs, _) = encode_synthesis(&m2());
    let plan = solve(&problem, PlanStrategy::Bfs, PlanLimits::default());
    let plan = plan.plan.expect("n = 2 plans exist");
    assert_eq!(plan.len(), 4);
    assert!(m2().is_correct(&plan_to_program(&plan, &instrs)));
}

#[test]
fn sat_solution_passes_the_enumerative_oracle_and_vice_versa() {
    let machine = m2();
    let (outcome, _) = smt_perm(&machine, 4, EncodeOptions::default(), Budget::default());
    let SynthOutcome::Found(sat_prog) = outcome else {
        panic!("n = 2 solves instantly");
    };
    assert!(machine.is_correct(&sat_prog));

    let enum_prog = synthesize(&SynthesisConfig::best(machine.clone()))
        .first_program()
        .expect("kernel exists");
    // The enumerated program satisfies the SAT encoding's semantics too:
    // re-running it through the machine on every permutation is exactly the
    // encoded transition relation.
    assert!(machine.is_correct(&enum_prog));
}

#[test]
fn stoke_warm_start_from_enumerated_kernel_stays_optimal() {
    let machine = m2();
    let prog = synthesize(&SynthesisConfig::best(machine.clone()))
        .first_program()
        .expect("kernel exists");
    let result = stoke_run(&StokeConfig {
        machine: machine.clone(),
        start: Start::Warm {
            prog,
            extra_slots: 2,
        },
        iterations: 30_000,
        beta: 2.0,
        seed: 17,
        tests: TestSuite::Full,
        minimize_length: true,
        budget: Default::default(),
    });
    let best = result.best_correct.expect("warm start is correct");
    // 4 is optimal: MCMC can never verify anything shorter.
    assert_eq!(best.len(), 4);
    assert!(machine.is_correct(&best));
}

#[test]
fn budgeted_runs_terminate_quickly() {
    // Every technique must respect a tiny wall-clock budget (the harness
    // depends on this to render "—" rows instead of hanging).
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let budget = Budget::with_timeout(Duration::from_millis(200));
    let t = std::time::Instant::now();
    let (outcome, _) = smt_perm(&machine, 11, EncodeOptions::default(), budget);
    assert!(
        t.elapsed() < Duration::from_secs(30),
        "budget overshoot: {:?}",
        t.elapsed()
    );
    // Either it finished very fast or it reported the budget.
    if outcome == SynthOutcome::Budget {
        // expected on most machines
    }
}
