//! End-to-end integration: synthesis through execution, across crates.

use sortsynth::isa::{permutations, IsaMode, Machine};
use sortsynth::jit::JitKernel;
use sortsynth::kernels::{interpret, mergesort_with, quicksort_with, Kernel};
use sortsynth::search::{synthesize, SynthesisConfig};

/// Synthesize with the best configuration and sanity-check the result.
fn best_kernel(machine: &Machine) -> Vec<sortsynth::isa::Instr> {
    let result = synthesize(&SynthesisConfig::best(machine.clone()));
    let prog = result.first_program().expect("kernel exists");
    assert!(machine.is_correct(&prog));
    prog
}

#[test]
fn synthesized_lengths_match_the_paper() {
    assert_eq!(best_kernel(&Machine::new(2, 1, IsaMode::Cmov)).len(), 4);
    assert_eq!(best_kernel(&Machine::new(3, 1, IsaMode::Cmov)).len(), 11);
    assert_eq!(best_kernel(&Machine::new(2, 1, IsaMode::MinMax)).len(), 3);
    assert_eq!(best_kernel(&Machine::new(3, 1, IsaMode::MinMax)).len(), 8);
}

#[test]
fn jit_interpreter_and_packed_semantics_agree_on_synthesized_kernels() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let machine = Machine::new(3, 1, mode);
        let prog = best_kernel(&machine);
        let jit = JitKernel::compile(&machine, &prog);
        for perm in permutations(3) {
            // Packed nibble semantics (the search oracle).
            let packed = machine.run(&prog, machine.initial_state(&perm));
            let packed_out: Vec<i32> = packed.values(3).iter().map(|&v| v as i32).collect();
            // Wide interpreter on scaled values.
            let mut wide: Vec<i32> = perm.iter().map(|&v| v as i32).collect();
            interpret(&machine, &prog, &mut wide);
            assert_eq!(wide, packed_out, "{mode:?} {perm:?}");
            // Native JIT (x86-64 only).
            if let Ok(jit) = &jit {
                let mut native: Vec<i32> = perm.iter().map(|&v| v as i32).collect();
                jit.run(&mut native);
                assert_eq!(native, packed_out, "{mode:?} {perm:?}");
            }
        }
    }
}

#[test]
fn synthesized_kernel_drives_quicksort_and_mergesort() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let prog = best_kernel(&machine);
    let kernel = Kernel::from_program("synth3", &machine, prog);
    // Deterministic pseudo-random arrays, no rand dependency needed.
    let mut seed = 0x2545f4914f6cdd1du64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 20001) as i32 - 10000
    };
    for len in [0usize, 1, 2, 3, 7, 100, 2048] {
        let data: Vec<i32> = (0..len).map(|_| next()).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut q = data.clone();
        quicksort_with(&kernel, &mut q);
        assert_eq!(q, expected, "quicksort len {len}");
        let mut m = data.clone();
        mergesort_with(&kernel, &mut m);
        assert_eq!(m, expected, "mergesort len {len}");
    }
}

#[test]
fn kernels_are_correct_on_duplicate_values_too() {
    // §2.3: constant-free kernels correct on all permutations are correct on
    // every input — verify the claim empirically over all 3^3 value tuples.
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let prog = best_kernel(&machine);
    for a in 1..=3u8 {
        for b in 1..=3u8 {
            for c in 1..=3u8 {
                let mut data = vec![a as i32, b as i32, c as i32];
                let mut expected = data.clone();
                expected.sort_unstable();
                interpret(&machine, &prog, &mut data);
                assert_eq!(data, expected, "input ({a}, {b}, {c})");
            }
        }
    }
}

#[test]
fn more_scratch_registers_never_hurt_optimality() {
    // Extra scratch cannot make the optimal kernel longer.
    let one = synthesize(&SynthesisConfig::best(Machine::new(2, 1, IsaMode::Cmov)));
    let two = synthesize(&SynthesisConfig::best(Machine::new(2, 2, IsaMode::Cmov)));
    assert!(two.found_len.expect("solved") <= one.found_len.expect("solved"));
}
