//! Solution-space integration tests: enumeration counts, cut behaviour,
//! and solution analysis across crates.

use sortsynth::isa::{IsaMode, Machine};
use sortsynth::search::{
    command_signature, distinct_command_signatures, sample_lowest_strata, score_strata, synthesize,
    Cut, Outcome, SynthesisConfig,
};

fn machine3() -> Machine {
    Machine::new(3, 1, IsaMode::Cmov)
}

fn all_solutions(cut: Option<Cut>) -> sortsynth::search::SynthesisResult {
    let mut cfg = SynthesisConfig::new(machine3())
        .budget_viability(true)
        .all_solutions(true)
        .max_len(11);
    if let Some(c) = cut {
        cfg = cfg.cut(c);
    }
    synthesize(&cfg)
}

#[test]
fn cut_1_keeps_a_correct_subset_of_minimal_solutions() {
    let result = all_solutions(Some(Cut::Factor(1.0)));
    assert_eq!(result.outcome, Outcome::SolvedAll);
    assert_eq!(result.found_len, Some(11));
    let programs = result.dag.programs(usize::MAX);
    assert_eq!(programs.len() as u64, result.solution_count());
    // Our model retains 234 solutions at k = 1 (the paper's model: 222).
    assert_eq!(programs.len(), 234);
    let machine = machine3();
    for prog in &programs {
        assert_eq!(prog.len(), 11);
        assert!(machine.is_correct(prog));
    }
    // All programs distinct.
    let mut unique = programs.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), programs.len());
}

#[test]
fn larger_cut_factors_keep_more_solutions() {
    let k1 = all_solutions(Some(Cut::Factor(1.0))).solution_count();
    let k15 = all_solutions(Some(Cut::Factor(1.5))).solution_count();
    assert!(k1 < k15, "k=1 {k1} vs k=1.5 {k15}");
}

/// The full enumeration (5602 solutions, 23 command combinations — both
/// matching the paper exactly) takes ~1 min in debug builds; run it with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "full 5602-solution enumeration; run with --release -- --ignored"]
fn full_solution_space_matches_the_paper_exactly() {
    let result = all_solutions(None);
    assert_eq!(result.solution_count(), 5602);
    let programs = result.dag.programs(usize::MAX);
    assert_eq!(distinct_command_signatures(programs.iter()), 23);
    // k = 2 preserves every solution (Figure 2's headline observation).
    let k2 = all_solutions(Some(Cut::Factor(2.0)));
    assert_eq!(k2.solution_count(), 5602);
}

#[test]
fn every_solution_uses_exactly_three_comparisons() {
    // All 23 signatures in the paper have cmp = 3; check on the k = 1
    // subset.
    let programs = all_solutions(Some(Cut::Factor(1.0)))
        .dag
        .programs(usize::MAX);
    for prog in &programs {
        let sig = command_signature(prog);
        assert_eq!(sig[1], 3, "cmp count in {sig:?}");
    }
}

#[test]
fn score_sampling_takes_the_cheapest_strata() {
    let programs = all_solutions(Some(Cut::Factor(1.0)))
        .dag
        .programs(usize::MAX);
    let strata = score_strata(programs.clone());
    let lowest: Vec<u32> = strata.keys().copied().take(2).collect();
    let sample = sample_lowest_strata(programs, 2, 5);
    assert!(!sample.is_empty());
    for prog in &sample {
        let score = sortsynth::isa::sampling_score(prog);
        assert!(lowest.contains(&score), "score {score} not in {lowest:?}");
    }
}

#[test]
fn solution_dag_has_multiple_goal_states() {
    // Different final scratch/flag contents yield distinct goal states.
    let result = all_solutions(Some(Cut::Factor(1.0)));
    assert!(result.dag.goal_states() >= 2);
}
