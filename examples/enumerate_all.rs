//! Enumerate *all* optimal sorting kernels for n = 3 — the capability that
//! distinguishes the enumerative approach from AlphaDev (§5.1/§5.3) — then
//! analyze the solution space: command-combination diversity and the §5.3
//! score strata used for sampling.
//!
//! ```sh
//! cargo run --release --example enumerate_all
//! ```

use sortsynth::isa::{IsaMode, Machine};
use sortsynth::search::{
    command_signature, distinct_command_signatures, score_strata, synthesize, SynthesisConfig,
};

fn main() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);

    // All minimal-length solutions: layered search, no cut, collect the
    // whole solution DAG at length 11.
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .all_solutions(true)
        .max_len(11);
    let result = synthesize(&cfg);
    let programs = result.dag.programs(usize::MAX);
    println!(
        "{} distinct optimal kernels of length {:?} (paper: 5602 of length 11)",
        programs.len(),
        result.found_len
    );

    // Diversity: how many distinct opcode multisets ("command
    // combinations") exist? The paper observes only 23.
    println!(
        "{} distinct command combinations (paper: 23)",
        distinct_command_signatures(programs.iter())
    );

    // Score strata (§5.3: mov = 1, cmp = 2, cmov = 4, plus critical path).
    let strata = score_strata(programs.clone());
    println!("\nscore  kernels");
    for (score, group) in &strata {
        println!("{score:>5}  {}", group.len());
    }

    // Show one kernel from the best stratum.
    let best = strata
        .values()
        .next()
        .and_then(|g| g.first())
        .expect("solutions exist");
    println!(
        "\na best-scoring kernel (signature {:?}):\n\n{}",
        command_signature(best),
        machine.format_program(best)
    );
    assert!(machine.is_correct(best));
}
