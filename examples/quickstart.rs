//! Quickstart: synthesize an optimal sorting kernel for 3 values, print it,
//! and run it natively on real data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sortsynth::isa::{IsaMode, Machine};
use sortsynth::kernels::Kernel;
use sortsynth::search::{synthesize, SynthesisConfig};

fn main() {
    // 1. Describe the machine: 3 values to sort, 1 scratch register, the
    //    x86 conditional-move instruction set.
    let machine = Machine::new(3, 1, IsaMode::Cmov);

    // 2. Synthesize with the paper's best configuration (§5.2 "(III)").
    let result = synthesize(&SynthesisConfig::best(machine.clone()));
    let kernel = result.first_program().expect("n = 3 kernels exist");
    println!(
        "synthesized a {}-instruction kernel in {:?} ({} states explored):\n",
        kernel.len(),
        result.stats.search_time,
        result.stats.generated
    );
    println!("{}", machine.format_program(&kernel));

    // 3. The synthesizer's correctness oracle already checked all 3!
    //    permutations; double-check through the public API.
    assert!(machine.is_correct(&kernel));

    // 4. Run it on real data — JIT-compiled to native x86-64 when possible,
    //    interpreted otherwise.
    let runner = Kernel::from_program("quickstart", &machine, kernel);
    let mut data = [1729, -42, 365];
    runner.sort(&mut data);
    println!("sorted: {data:?}");
    assert_eq!(data, [-42, 365, 1729]);
    println!(
        "executed {} (backend: {})",
        if runner.is_native() {
            "natively"
        } else {
            "interpreted"
        },
        if runner.is_native() {
            "JIT"
        } else {
            "portable interpreter"
        },
    );
}
