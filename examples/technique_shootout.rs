//! Run every synthesis technique in the workspace on the same small
//! problem (n = 2, the 4-instruction compare-and-swap) and compare: the
//! paper's §5.2 comparison in miniature.
//!
//! ```sh
//! cargo run --release --example technique_shootout
//! ```

use std::time::{Duration, Instant};

use sortsynth::isa::{IsaMode, Machine};
use sortsynth::mcts::{run as mcts_run, MctsConfig};
use sortsynth::plan::{encode_synthesis, plan_to_program, solve, PlanLimits, PlanStrategy};
use sortsynth::search::{synthesize, SynthesisConfig};
use sortsynth::solvers::{smt_cegis, smt_perm, Budget, CegisDomain, EncodeOptions, SynthOutcome};
use sortsynth::stoke::{run as stoke_run, Start, StokeConfig, TestSuite};

fn report(name: &str, start: Instant, found: Option<usize>) {
    match found {
        Some(len) => println!(
            "{name:<28} {:>10.2?}   kernel of {len} instructions",
            start.elapsed()
        ),
        None => println!("{name:<28} {:>10.2?}   — no kernel", start.elapsed()),
    }
}

fn main() {
    let machine = Machine::new(2, 1, IsaMode::Cmov);
    println!("synthesizing the n = 2 compare-and-swap with every technique:\n");

    // 1. Enumerative search (the paper's contribution).
    let t = Instant::now();
    let result = synthesize(&SynthesisConfig::best(machine.clone()));
    report(
        "enumerative (best config)",
        t,
        result.first_program().map(|p| p.len()),
    );

    // 2. SMT one-shot over all permutations.
    let t = Instant::now();
    let (outcome, _) = smt_perm(&machine, 4, EncodeOptions::default(), Budget::default());
    report("SMT-Perm", t, found_len(&outcome));

    // 3. SMT CEGIS with counterexamples.
    let t = Instant::now();
    let (outcome, stats) = smt_cegis(
        &machine,
        4,
        CegisDomain::Permutations,
        EncodeOptions::default(),
        Budget::default(),
    );
    report(
        &format!("SMT-CEGIS ({} iterations)", stats.iterations),
        t,
        found_len(&outcome),
    );

    // 4. Classical planning (Plan-Parallel encoding, blind BFS).
    let t = Instant::now();
    let (problem, instrs, _) = encode_synthesis(&machine);
    let plan = solve(&problem, PlanStrategy::Bfs, PlanLimits::default());
    report(
        "planning (BFS)",
        t,
        plan.plan
            .as_ref()
            .map(|p| plan_to_program(p, &instrs).len()),
    );

    // 5. Stochastic superoptimization (STOKE-style MCMC).
    let t = Instant::now();
    let stoke = stoke_run(&StokeConfig {
        machine: machine.clone(),
        start: Start::Cold { slots: 6 },
        iterations: 2_000_000,
        beta: 1.0,
        seed: 7,
        tests: TestSuite::Full,
        minimize_length: true,
        budget: Default::default(),
    });
    report(
        "stochastic (STOKE, cold)",
        t,
        stoke.best_correct.map(|p| p.len()),
    );

    // 6. Monte-Carlo tree search (AlphaDev's search skeleton).
    let t = Instant::now();
    let mcts = mcts_run(&MctsConfig {
        machine: machine.clone(),
        max_len: 6,
        iterations: 100_000,
        exploration: 1.4,
        seed: 11,
        budget: Default::default(),
    });
    report("MCTS (unlearned)", t, mcts.best_program.map(|p| p.len()));

    println!(
        "\nall of these scale very differently: rerun the §5.2 tables with\n\
         `cargo run --release -p sortsynth-bench --bin run_all` to see the paper's\n\
         finding that only the enumerative approach reaches n = 4 and 5."
    );
    let _ = Duration::ZERO;
}

fn found_len(outcome: &SynthOutcome) -> Option<usize> {
    match outcome {
        SynthOutcome::Found(p) => Some(p.len()),
        _ => None,
    }
}
