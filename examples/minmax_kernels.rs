//! Synthesize min/max (vector) kernels and compare them against the
//! sorting-network construction (§5.4) — including the 23-instruction
//! n = 5 kernel this workspace found, which beats the 26 the paper reports.
//!
//! ```sh
//! cargo run --release --example minmax_kernels
//! ```

use sortsynth::isa::{IsaMode, Machine};
use sortsynth::kernels::{network_to_minmax, optimal_network, reference, Kernel};
use sortsynth::search::{synthesize, SynthesisConfig};

fn main() {
    for n in [3u8, 4] {
        let machine = Machine::new(n, 1, IsaMode::MinMax);
        let result = synthesize(&SynthesisConfig::best(machine.clone()));
        let kernel = result.first_program().expect("min/max kernels exist");
        let network = network_to_minmax(&machine, &optimal_network(n));
        println!(
            "n = {n}: synthesized {} instructions vs {} for the optimal network (paper: {} vs {})",
            kernel.len(),
            network.len(),
            match n {
                3 => 8,
                4 => 15,
                _ => unreachable!(),
            },
            match n {
                3 => 9,
                4 => 15,
                _ => unreachable!(),
            },
        );
        assert!(machine.is_correct(&kernel));
    }

    // The checked-in n = 5 kernel (synthesis takes ~5 s; see E16 to rerun).
    let (machine, kernel) = reference::enum_minmax5();
    let network = network_to_minmax(&machine, &optimal_network(5));
    println!(
        "n = 5: checked-in synthesized kernel has {} instructions vs {} for the network \
         (the paper reports 26 — this workspace's search found a shorter one)",
        kernel.len(),
        network.len()
    );
    assert!(machine.is_correct(&kernel));

    // And one size beyond the paper's evaluation: n = 6 at 34 instructions
    // (network: 36).
    let (m6, k6) = reference::enum_minmax6();
    assert!(m6.is_correct(&k6));
    println!(
        "n = 6: checked-in synthesized kernel has {} instructions vs {} for the network (beyond the paper)",
        k6.len(),
        sortsynth::kernels::network_to_minmax(&m6, &optimal_network(6)).len()
    );

    println!("\nthe n = 5 kernel:\n\n{}", machine.format_program(&kernel));

    // Run it natively on data with duplicates and negatives.
    let runner = Kernel::from_program("minmax5", &machine, kernel);
    let mut data = [7, -7, 0, 7, -100];
    runner.sort(&mut data);
    println!("sorted: {data:?}");
    assert_eq!(data, [-100, -7, 0, 7, 7]);
}
