//! Certify optimal kernel lengths by exhaustive lower-bound proofs — the
//! methodology behind the paper's new tight bound for n = 4 (§5.3).
//!
//! ```sh
//! cargo run --release --example prove_lower_bound
//! ```

use std::time::Instant;

use sortsynth::isa::{IsaMode, Machine};
use sortsynth::search::{prove_no_solution, prove_optimal_length, BoundVerdict};

fn main() {
    // n = 2, cmov: the optimum is the 4-instruction compare-and-swap.
    let m2 = Machine::new(2, 1, IsaMode::Cmov);
    assert_eq!(prove_optimal_length(&m2, 4, None, None), Some(true));
    println!("n = 2, cmov: optimal kernel length proven to be 4");

    // n = 3, cmov: the optimum is 11 — the claim AlphaDev spent three days
    // validating; the exhaustive layered search settles it in seconds.
    let m3 = Machine::new(3, 1, IsaMode::Cmov);
    let start = Instant::now();
    let below = prove_no_solution(&m3, 10, None, None);
    assert_eq!(below.verdict, BoundVerdict::NoSolution);
    println!(
        "n = 3, cmov: no 10-instruction kernel exists ({} states, {:?}) -> 11 is optimal",
        below.stats.generated,
        start.elapsed()
    );

    // min/max ISA: 8 is optimal for n = 3 (one shorter than the sorting
    // network, §5.4).
    let mm3 = Machine::new(3, 1, IsaMode::MinMax);
    assert_eq!(prove_optimal_length(&mm3, 8, None, None), Some(true));
    println!("n = 3, min/max: optimal kernel length proven to be 8");

    // n = 4: the paper's headline bound (no 19-instruction kernel, so the
    // length-20 solutions are optimal) took two weeks of compute; here we
    // only demonstrate the mechanism under a small state budget.
    let m4 = Machine::new(4, 1, IsaMode::Cmov);
    let attempt = prove_no_solution(&m4, 19, Some(2_000_000), None);
    println!(
        "n = 4, cmov, bound 19 with a 2M-state budget: {:?} (full proof: run without a budget — the paper needed two weeks)",
        attempt.verdict
    );
}
